/**
 * @file
 * pcnn_cli — command-line front end to the P-CNN library.
 *
 * Subcommands:
 *   gpus                              list GPU presets
 *   nets                              list model-zoo networks
 *   compile  --net N --gpu G [--task T] [--batch B] [--out FILE]
 *                                     offline-compile and show the plan
 *   inspect  FILE                     print a saved plan
 *   estimate --net N --gpu G --lib L [--batch B]
 *                                     vendor-library latency estimate
 *   schedulers --net N --gpu G --task T
 *                                     compare the six schedulers
 *
 * Examples:
 *   pcnn_cli compile --net AlexNet --gpu TX1 --task interactive
 *   pcnn_cli estimate --net VGGNet --gpu 970m --lib cuDNN --batch 32
 *   pcnn_cli schedulers --net GoogLeNet --gpu TX1 --task real-time
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "libs/dl_library.hh"
#include "pcnn/offline/plan_io.hh"
#include "pcnn/pcnn.hh"

using namespace pcnn;

namespace {

/** Minimal --key value argument parser. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
                values[arg.substr(2)] = argv[++i];
            } else {
                positional.push_back(arg);
            }
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        const auto it = values.find(key);
        return it == values.end() ? fallback : it->second;
    }

    bool has(const std::string &key) const { return values.count(key); }

    const std::vector<std::string> &pos() const { return positional; }

  private:
    std::map<std::string, std::string> values;
    std::vector<std::string> positional;
};

NetDescriptor
netByName(const std::string &name)
{
    for (const NetDescriptor &net : paperNetworks())
        if (net.name == name)
            return net;
    pcnn_fatal("unknown network '", name,
               "' (try: AlexNet, GoogLeNet, VGGNet)");
}

AppSpec
appByTask(const std::string &task)
{
    if (task == "interactive")
        return ageDetectionApp();
    if (task == "real-time")
        return videoSurveillanceApp();
    if (task == "background")
        return imageTaggingApp();
    pcnn_fatal("unknown task '", task,
               "' (try: interactive, real-time, background)");
}

void
printPlan(const CompiledPlan &plan)
{
    std::printf("plan: %s on %s, batch %zu, predicted %.3f ms "
                "(conv %.3f, fc %.3f, aux %.3f)%s\n",
                plan.netName.c_str(), plan.gpuName.c_str(), plan.batch,
                plan.latencyS() * 1e3, plan.time.convS * 1e3,
                plan.time.fcS * 1e3, plan.time.auxS * 1e3,
                plan.timeRequirementMissed
                    ? "  [time requirement missed]"
                    : "");
    TextTable t({"Layer", "GEMM (MxNxK)", "Kernel", "optTLP", "optSM",
                 "Util", "Time (ms)"});
    for (const LayerSchedule &ls : plan.layers) {
        t.addRow({ls.layer.name,
                  std::to_string(ls.gemm.m) + "x" +
                      std::to_string(ls.gemm.n) + "x" +
                      std::to_string(ls.gemm.k),
                  ls.kernel.config.str(),
                  TextTable::num(ls.kernel.optTLP),
                  TextTable::num(ls.kernel.optSM),
                  TextTable::num(ls.util, 2),
                  TextTable::num(ls.timeS * 1e3, 3)});
    }
    std::printf("%s", t.render().c_str());
}

int
cmdGpus()
{
    TextTable t({"Name", "Platform", "SMs", "Cores", "Clock (MHz)",
                 "Peak (TFLOP/s)", "Mem (MB)", "BW (GB/s)"});
    for (const GpuSpec &g : allGpus()) {
        t.addRow({g.name, g.platform, TextTable::num(g.numSMs),
                  TextTable::num(g.numSMs * g.coresPerSM),
                  TextTable::num(g.coreClockMHz, 0),
                  TextTable::num(g.peakFlops() / 1e12, 2),
                  TextTable::num(g.dramMB, 0),
                  TextTable::num(g.memBandwidthGBs, 1)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdNets()
{
    TextTable t({"Name", "Conv layers", "GFLOP/img", "Params (M)",
                 "Paper batch"});
    for (const NetDescriptor &net : paperNetworks()) {
        t.addRow({net.name, TextTable::num(net.convs.size()),
                  TextTable::num(net.totalFlopsPerImage() / 1e9, 2),
                  TextTable::num(double(net.weightCount()) / 1e6, 1),
                  TextTable::num(net.paperBatch)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdCompile(const Args &args)
{
    const NetDescriptor net = netByName(args.get("net", "AlexNet"));
    const GpuSpec gpu = gpuByName(args.get("gpu", "TX1"));
    const OfflineCompiler compiler(gpu);

    CompiledPlan plan;
    if (args.has("batch")) {
        plan = compiler.compileAtBatch(
            net, std::size_t(std::stoul(args.get("batch"))));
    } else {
        plan = compiler.compile(
            net, appByTask(args.get("task", "interactive")));
    }
    printPlan(plan);

    const std::string out = args.get("out");
    if (!out.empty()) {
        if (!savePlan(plan, out)) {
            std::fprintf(stderr, "cannot write %s\n", out.c_str());
            return 1;
        }
        std::printf("saved -> %s\n", out.c_str());
    }
    return 0;
}

int
cmdInspect(const Args &args)
{
    if (args.pos().empty()) {
        std::fprintf(stderr, "usage: pcnn_cli inspect FILE\n");
        return 2;
    }
    const auto plan = loadPlan(args.pos()[0]);
    if (!plan) {
        std::fprintf(stderr, "cannot load plan from %s\n",
                     args.pos()[0].c_str());
        return 1;
    }
    printPlan(*plan);
    return 0;
}

int
cmdEstimate(const Args &args)
{
    const NetDescriptor net = netByName(args.get("net", "AlexNet"));
    const GpuSpec gpu = gpuByName(args.get("gpu", "TX1"));
    const auto lib = libraryByName(args.get("lib", "cuDNN"));
    const std::size_t batch =
        args.has("batch") ? std::size_t(std::stoul(args.get("batch")))
                          : net.paperBatch;

    const LatencyEstimate est = lib->estimateLatency(gpu, net, batch);
    if (est.oom) {
        std::printf("%s + %s batch %zu on %s: OUT OF MEMORY "
                    "(needs %.0f MB, usable %.0f MB)\n",
                    lib->name().c_str(), net.name.c_str(), est.batch,
                    gpu.name.c_str(), est.footprint.total() / 1e6,
                    usableBytes(gpu) / 1e6);
        return 0;
    }
    std::printf("%s + %s batch %zu on %s:\n", lib->name().c_str(),
                net.name.c_str(), est.batch, gpu.name.c_str());
    std::printf("  latency     %.1f ms (conv %.1f, fc %.1f, aux "
                "%.1f)\n",
                est.totalS() * 1e3, est.convTimeS * 1e3,
                est.fcTimeS * 1e3, est.auxTimeS * 1e3);
    std::printf("  throughput  %.0f img/s\n", est.throughput());
    std::printf("  memory      %.0f MB (weights %.0f, activations "
                "%.0f, workspace %.0f)\n",
                est.footprint.total() / 1e6,
                est.footprint.weightBytes / 1e6,
                est.footprint.activationBytes / 1e6,
                est.footprint.workspaceBytes / 1e6);
    return 0;
}

int
cmdSchedulers(const Args &args)
{
    const NetDescriptor net = netByName(args.get("net", "AlexNet"));
    const GpuSpec gpu = gpuByName(args.get("gpu", "K20c"));
    const AppSpec app = appByTask(args.get("task", "interactive"));
    const ScheduleContext ctx = makeContext(app, net, gpu);

    TextTable t({"Scheduler", "Batch", "Latency (ms)", "E/img (J)",
                 "SoC_time", "SoC"});
    for (const auto &s : allSchedulers()) {
        const ScheduleOutcome o = s->run(ctx);
        t.addRow({o.scheduler, TextTable::num(o.batch),
                  TextTable::num(o.latencyS * 1e3, 2),
                  TextTable::num(o.energyPerImageJ, 4),
                  o.deadlineMet ? TextTable::num(o.socTimeScore, 2)
                                : "x",
                  o.socScore > 0 ? TextTable::num(o.socScore, 2)
                                 : "x"});
    }
    std::printf("%s (%s) on %s:\n%s", app.name.c_str(),
                taskClassName(app.taskClass).c_str(),
                gpu.name.c_str(), t.render().c_str());
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: pcnn_cli <command> [options]\n"
        "  gpus | nets\n"
        "  compile  --net N --gpu G [--task T | --batch B] "
        "[--out FILE]\n"
        "  inspect  FILE\n"
        "  estimate --net N --gpu G --lib L [--batch B]\n"
        "  schedulers --net N --gpu G --task T\n"
        "tasks: interactive, real-time, background; "
        "libs: cuBLAS, cuDNN, Nervana\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    const Args args(argc, argv, 2);

    if (cmd == "gpus")
        return cmdGpus();
    if (cmd == "nets")
        return cmdNets();
    if (cmd == "compile")
        return cmdCompile(args);
    if (cmd == "inspect")
        return cmdInspect(args);
    if (cmd == "estimate")
        return cmdEstimate(args);
    if (cmd == "schedulers")
        return cmdSchedulers(args);
    return usage();
}
