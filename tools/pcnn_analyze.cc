/**
 * @file
 * Project static analyzer: the single rule engine behind the lint
 * gate (tools/lint.sh layer 3 delegates here) plus the concurrency
 * and hot-path discipline checks that plain grep cannot express.
 *
 * Needs no compiler front end: it parses the tree with the project's
 * own layout conventions (function names at column 0 after a
 * separate return-type line, `{`/`}` at column 0 for definitions)
 * and builds a name-level call graph — deliberately conservative:
 * same-named functions merge, unknown callees are ignored.
 *
 * Rules (ids usable in exemption comments):
 *
 *   raw-new        raw new/delete in src/ (unique_ptr<T>(new T...)
 *                  is exempt: sole way through a private copy ctor)
 *   libc-rand      std::rand/srand/random_shuffle anywhere
 *                  (determinism: randomness goes via common/random.hh)
 *   include-guard  src/ header guards must derive from the path
 *                  (src/pcnn/task.hh -> PCNN_PCNN_TASK_HH)
 *   mutable-global file-scope mutable globals in src/ outside
 *                  src/common/ (thread_local scratch is exempt)
 *   mutex-guard    every pcnn::Mutex field needs a PCNN_GUARDED_BY
 *                  partner in the same file; raw std::mutex fields
 *                  outside common/mutex.hh cannot carry annotations
 *   hot-path-alloc PCNN_HOT_PATH functions must not transitively
 *                  reach an allocating primitive (new/malloc,
 *                  container growth, container/Tensor construction)
 *   reader-check   PCNN_BINARY_READER functions need a validation
 *                  (PCNN_CHECK/PCNN_DCHECK or an early-failure
 *                  guard) before each length-driven read
 *
 * Exemptions, always with a reason:
 *
 *   // pcnn-analyze: allow(rule-id): reason          (this line, or
 *                                    the next code line if alone)
 *   // pcnn-analyze: allow-file(rule-id): reason     (whole file)
 *
 * Exempt lines are fully inert for hot-path-alloc: neither their
 * allocation sites nor their call edges are followed, so exempting a
 * call like queue.popBatch(...) prunes the whole subtree.
 *
 * Usage: pcnn_analyze [--root DIR] [file...]
 *   no files: scan DIR's src/tests/bench/tools/examples tree
 *             (tests/analyze_fixtures is skipped — its files are
 *             violations by design, driven by tests/test_analyze.cc)
 *   files:    scan exactly those files with every applicable rule
 * Exit: 0 clean, 1 violations, 2 usage/IO error.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct SourceFile
{
    std::string rel;                ///< path relative to the root
    std::vector<std::string> raw;   ///< verbatim lines
    std::vector<std::string> code;  ///< comments/literals blanked
    std::map<std::size_t, std::set<std::string>> lineAllows;
    std::set<std::string> fileAllows;
};

struct Violation
{
    std::string file;
    std::size_t line = 0;
    std::string rule;
    std::string message;
};

struct FunctionDef
{
    std::string name;       ///< bare name (no class qualifier)
    const SourceFile *file = nullptr;
    std::size_t sigLine = 0;  ///< 0-based index of the name line
    std::size_t bodyBegin = 0; ///< first line inside the braces
    std::size_t bodyEnd = 0;   ///< one past the last line inside
    bool hotPath = false;
    bool binaryReader = false;
};

std::vector<Violation> violations;

void
report(const SourceFile &f, std::size_t line_idx,
       const std::string &rule, const std::string &msg)
{
    violations.push_back({f.rel, line_idx + 1, rule, msg});
}

bool
lineExempt(const SourceFile &f, std::size_t line_idx,
           const std::string &rule)
{
    if (f.fileAllows.count(rule) != 0)
        return true;
    auto it = f.lineAllows.find(line_idx);
    return it != f.lineAllows.end() && it->second.count(rule) != 0;
}

// ------------------------------------------------------- file loading

/**
 * Blank out block/line comments and string/char literals so rule
 * regexes only ever match real code. Replacement preserves column
 * numbers (each blanked char becomes a space). Returns the allow
 * directives found in comments.
 */
void
loadFile(const fs::path &path, const std::string &rel, SourceFile &out)
{
    out.rel = rel;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        out.raw.push_back(line);

    static const std::regex allow_re(
        "pcnn-analyze:\\s*(allow|allow-file)\\(([a-z-]+)\\)");

    bool in_block = false;
    std::vector<std::size_t> pending; // allow-only lines awaiting code
    for (std::size_t i = 0; i < out.raw.size(); ++i) {
        const std::string &src = out.raw[i];
        std::string code(src.size(), ' ');
        std::string comment; // comment text on this line
        bool in_str = false, in_chr = false;
        for (std::size_t c = 0; c < src.size(); ++c) {
            const char ch = src[c];
            if (in_block) {
                if (ch == '*' && c + 1 < src.size() &&
                    src[c + 1] == '/') {
                    in_block = false;
                    ++c;
                }
                comment.push_back(ch);
                continue;
            }
            if (in_str) {
                if (ch == '\\')
                    ++c;
                else if (ch == '"')
                    in_str = false;
                continue;
            }
            if (in_chr) {
                if (ch == '\\')
                    ++c;
                else if (ch == '\'')
                    in_chr = false;
                continue;
            }
            if (ch == '/' && c + 1 < src.size() && src[c + 1] == '/') {
                comment.append(src, c, std::string::npos);
                break;
            }
            if (ch == '/' && c + 1 < src.size() && src[c + 1] == '*') {
                in_block = true;
                ++c;
                continue;
            }
            if (ch == '"') {
                in_str = true;
                continue;
            }
            // Apostrophe: char literal unless a digit separator.
            if (ch == '\'' &&
                !(c > 0 && std::isdigit((unsigned char)src[c - 1]) &&
                  c + 1 < src.size() &&
                  std::isdigit((unsigned char)src[c + 1]))) {
                in_chr = true;
                continue;
            }
            code[c] = ch;
        }
        out.code.push_back(code);

        std::smatch m;
        if (std::regex_search(comment, m, allow_re)) {
            if (m[1] == "allow-file") {
                out.fileAllows.insert(m[2]);
            } else {
                // Attach to this line if it has code, else to the
                // next code-bearing line.
                const bool has_code =
                    code.find_first_not_of(' ') != std::string::npos;
                if (has_code)
                    out.lineAllows[i].insert(m[2]);
                else
                    pending.push_back(i);
            }
        }
        if (!pending.empty() &&
            code.find_first_not_of(' ') != std::string::npos) {
            // Standalone allow comments cover the whole following
            // statement: a guard like `if (x.size() < n)` plus the
            // controlled line below it. The span ends at the first
            // code line that closes a statement (`;`, `{` or `}`).
            for (std::size_t p : pending) {
                std::smatch pm;
                std::string text = out.raw[p];
                if (std::regex_search(text, pm, allow_re))
                    out.lineAllows[i].insert(pm[2]);
            }
            const std::size_t tail =
                code.find_last_not_of(' ');
            if (tail == std::string::npos ||
                (code[tail] != ';' && code[tail] != '{' &&
                 code[tail] != '}'))
                continue; // keep covering the statement's next line
            pending.clear();
        }
    }
}

// ------------------------------------------------------ simple rules

bool
underDir(const std::string &rel, const char *dir)
{
    return rel.rfind(dir, 0) == 0;
}

void
ruleRawNew(const SourceFile &f)
{
    static const std::regex re(
        "\\bnew\\b\\s+[A-Za-z_(]|\\bdelete\\b\\s*(\\[\\])?\\s*[A-Za-z_(*]");
    static const std::regex uptr_re("unique_ptr<[^>]*>\\s*\\(\\s*new\\b");
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        if (lineExempt(f, i, "raw-new"))
            continue;
        if (!std::regex_search(f.code[i], re))
            continue;
        if (std::regex_search(f.code[i], uptr_re))
            continue;
        report(f, i, "raw-new",
               "raw new/delete (own memory with containers or "
               "std::unique_ptr)");
    }
}

void
ruleLibcRand(const SourceFile &f)
{
    static const std::regex re(
        "\\b(std::)?(rand|srand|random_shuffle)\\s*\\(");
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        if (lineExempt(f, i, "libc-rand"))
            continue;
        if (std::regex_search(f.code[i], re))
            report(f, i, "libc-rand",
                   "libc randomness (use common/random.hh Rng)");
    }
}

void
ruleIncludeGuard(const SourceFile &f)
{
    if (lineExempt(f, 0, "include-guard") ||
        f.fileAllows.count("include-guard") != 0)
        return;
    std::string stem = underDir(f.rel, "src/")
                           ? f.rel.substr(4)
                           : fs::path(f.rel).filename().string();
    std::string want = "PCNN_";
    for (char ch : stem) {
        if (ch == '/' || ch == '.')
            want.push_back('_');
        else
            want.push_back(char(std::toupper((unsigned char)ch)));
    }
    const std::string needle = "#ifndef " + want;
    for (const std::string &line : f.raw)
        if (line.rfind(needle, 0) == 0 &&
            (line.size() == needle.size() ||
             std::isspace((unsigned char)line[needle.size()])))
            return;
    report(f, 0, "include-guard", "expected include guard " + want);
}

void
ruleMutableGlobal(const SourceFile &f)
{
    static const std::regex decl_re(
        "^[A-Za-z_][A-Za-z0-9_:<>,&* ]* [a-zA-Z_][A-Za-z0-9_]*"
        "( =.*|\\{[^)]*\\})?;\\s*$");
    static const std::regex skip_re(
        "\\b(const|constexpr|using|typedef|extern|thread_local)\\b|\\(");
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        if (lineExempt(f, i, "mutable-global"))
            continue;
        if (!std::regex_search(f.code[i], decl_re))
            continue;
        if (std::regex_search(f.code[i], skip_re))
            continue;
        report(f, i, "mutable-global",
               "file-scope mutable global outside src/common/ "
               "(wrap in a function-local static or move to common/)");
    }
}

void
ruleMutexGuard(const SourceFile &f)
{
    if (f.rel == "src/common/mutex.hh")
        return; // the annotated wrapper itself
    static const std::regex pcnn_mu_re(
        "^\\s*(mutable\\s+)?Mutex\\s+([A-Za-z_][A-Za-z0-9_]*)\\s*;");
    static const std::regex std_mu_re(
        "^\\s*(mutable\\s+)?std::(mutex|shared_mutex|recursive_mutex)"
        "\\s+[A-Za-z_][A-Za-z0-9_]*\\s*;");
    std::string all;
    for (const std::string &line : f.raw) {
        all += line;
        all.push_back('\n');
    }
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        if (lineExempt(f, i, "mutex-guard"))
            continue;
        std::smatch m;
        if (std::regex_search(f.code[i], m, std_mu_re)) {
            report(f, i, "mutex-guard",
                   "raw std::mutex field cannot carry thread-safety "
                   "annotations; use pcnn::Mutex (common/mutex.hh)");
            continue;
        }
        if (std::regex_search(f.code[i], m, pcnn_mu_re)) {
            const std::string name = m[2];
            if (all.find("PCNN_GUARDED_BY(" + name) ==
                std::string::npos)
                report(f, i, "mutex-guard",
                       "Mutex '" + name +
                           "' has no PCNN_GUARDED_BY(" + name +
                           ") partner in this file");
        }
    }
}

// --------------------------------------- function / call-graph rules

bool
isKeyword(const std::string &s)
{
    static const std::set<std::string> kw = {
        "if",     "for",       "while",     "switch",   "return",
        "sizeof", "alignof",   "decltype",  "catch",    "defined",
        "else",   "case",      "namespace", "template", "static_assert",
        "assert", "using",     "typedef",   "struct",   "class",
        "enum",   "constexpr", "const",     "throw",    "operator",
        "do",     "new",       "delete",    "public",   "private",
        "int",    "void",      "bool",      "float",    "double",
        "char",   "auto"};
    return kw.count(s) != 0;
}

/**
 * Extract function definitions from one file. Handles the two
 * project shapes:
 *  - .cc definitions: qualified name at column 0 (return type on the
 *    previous line), `{` alone at column 0, `}` alone at column 0;
 *  - inline bodies whose `{ ... }` starts on the signature line
 *    (header accessors), tracked by brace counting.
 */
void
extractFunctions(const SourceFile &f, std::vector<FunctionDef> &out)
{
    static const std::regex col0_re(
        "^([A-Za-z_~][A-Za-z0-9_]*(::[A-Za-z_~][A-Za-z0-9_]*|"
        "<[^;{]*>)*)\\s*\\(");
    static const std::regex inline_re(
        "\\b([A-Za-z_][A-Za-z0-9_]*)\\s*\\(([^()]|\\([^()]*\\))*\\)"
        "\\s*(const\\s*|noexcept\\s*|override\\s*|final\\s*|"
        "PCNN_[A-Z_]+(\\([^()]*\\))?\\s*|->\\s*[^{;]+)*\\{");

    auto tagNear = [&](std::size_t i, const char *tag) {
        for (std::size_t back = 1; back <= 3 && back <= i; ++back)
            if (f.raw[i - back].find(tag) != std::string::npos)
                return true;
        return f.raw[i].find(tag) != std::string::npos;
    };

    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string &line = f.code[i];
        std::smatch m;
        if (std::regex_search(line, m, col0_re) &&
            m.position(0) == 0) {
            // Qualified name at column 0: find the `{` at column 0
            // that opens the body (a `;` at paren depth 0 first
            // means declaration, not definition).
            const std::string qual = m[1];
            const std::size_t dots = qual.rfind("::");
            std::string name = dots == std::string::npos
                                   ? qual
                                   : qual.substr(dots + 2);
            if (isKeyword(name))
                continue;
            int paren = 0;
            bool decl_only = false;
            std::size_t open = 0;
            for (std::size_t j = i; j < f.code.size() && j < i + 24;
                 ++j) {
                for (char ch : f.code[j]) {
                    if (ch == '(')
                        ++paren;
                    else if (ch == ')')
                        --paren;
                    else if (ch == ';' && paren == 0) {
                        decl_only = true;
                        break;
                    }
                }
                if (decl_only)
                    break;
                if (paren == 0 && j + 1 < f.code.size() &&
                    f.code[j + 1].rfind("{", 0) == 0) {
                    open = j + 1;
                    break;
                }
            }
            if (decl_only || open == 0)
                continue;
            int depth = 0;
            std::size_t end = open;
            for (std::size_t j = open; j < f.code.size(); ++j) {
                for (char ch : f.code[j]) {
                    if (ch == '{')
                        ++depth;
                    else if (ch == '}')
                        --depth;
                }
                if (depth == 0) {
                    end = j;
                    break;
                }
            }
            FunctionDef fn;
            fn.name = name;
            fn.file = &f;
            fn.sigLine = i;
            fn.bodyBegin = open + 1;
            fn.bodyEnd = end;
            fn.hotPath = tagNear(i, "PCNN_HOT_PATH");
            fn.binaryReader = tagNear(i, "PCNN_BINARY_READER");
            out.push_back(fn);
            i = end;
            continue;
        }
        // Inline body on the signature line (header methods).
        if (std::regex_search(line, m, inline_re)) {
            const std::string name = m[1];
            if (isKeyword(name))
                continue;
            const std::size_t brace =
                std::size_t(m.position(0) + m.length(0)) - 1;
            int depth = 0;
            std::size_t end = i;
            bool closed = false;
            for (std::size_t j = i; j < f.code.size() && !closed;
                 ++j) {
                const std::size_t from = j == i ? brace : 0;
                for (std::size_t c = from; c < f.code[j].size();
                     ++c) {
                    if (f.code[j][c] == '{')
                        ++depth;
                    else if (f.code[j][c] == '}' && --depth == 0) {
                        end = j;
                        closed = true;
                        break;
                    }
                }
            }
            if (!closed)
                continue;
            FunctionDef fn;
            fn.name = name;
            fn.file = &f;
            fn.sigLine = i;
            fn.bodyBegin = i; // single/multi-line body incl. this line
            fn.bodyEnd = end + 1;
            fn.hotPath = tagNear(i, "PCNN_HOT_PATH");
            fn.binaryReader = tagNear(i, "PCNN_BINARY_READER");
            out.push_back(fn);
            if (end > i)
                i = end;
        }
    }
}

/** Allocation primitives a hot path must never reach. */
bool
allocSite(const std::string &code, std::string &what)
{
    static const std::regex new_re("\\bnew\\b\\s*[A-Za-z_(:[]");
    static const std::regex libc_re(
        "\\b(malloc|calloc|realloc|strdup|aligned_alloc)\\s*\\(");
    static const std::regex grow_re(
        "\\.(push_back|emplace_back|emplace|insert|reserve|assign|"
        "append|push_front|resize)\\s*\\(");
    static const std::regex make_re(
        "\\bmake_(unique|shared)\\s*[<(]");
    static const std::regex ctor_re(
        "\\b(std::vector<[^;]*>|std::string|std::deque<[^;]*>|"
        "Tensor)\\s+[a-zA-Z_][A-Za-z0-9_]*\\s*[({=]");
    std::smatch m;
    if (std::regex_search(code, m, new_re)) {
        what = "operator new";
        return true;
    }
    if (std::regex_search(code, m, libc_re)) {
        what = m[1].str() + "()";
        return true;
    }
    if (std::regex_search(code, m, grow_re)) {
        what = "." + m[1].str() + "()";
        return true;
    }
    if (std::regex_search(code, m, make_re)) {
        what = "make_" + m[1].str();
        return true;
    }
    if (std::regex_search(code, m, ctor_re)) {
        what = "container/Tensor construction";
        return true;
    }
    return false;
}

bool
checkLine(const std::string &code)
{
    return code.find("PCNN_CHECK") != std::string::npos ||
           code.find("PCNN_DCHECK") != std::string::npos ||
           code.find("pcnn_assert") != std::string::npos ||
           code.find("static_assert") != std::string::npos;
}

/** Last line index (inclusive) of the parenthesised statement that
    starts at `i`. Contract macros span lines (the message arguments
    wrap), and their continuation lines must inherit the exemption —
    a Shape::str() call inside a PCNN_CHECK message only runs on the
    failure path. */
std::size_t
statementEnd(const SourceFile &f, std::size_t i, std::size_t limit)
{
    int depth = 0;
    bool opened = false;
    for (std::size_t j = i; j < limit; ++j) {
        for (char c : f.code[j]) {
            if (c == '(') {
                ++depth;
                opened = true;
            } else if (c == ')') {
                --depth;
            }
        }
        if (opened && depth <= 0)
            return j;
    }
    return i;
}

void
ruleHotPathAlloc(const std::vector<FunctionDef> &funcs)
{
    std::map<std::string, std::vector<const FunctionDef *>> byName;
    for (const FunctionDef &fn : funcs)
        byName[fn.name].push_back(&fn);

    static const std::regex call_re("([A-Za-z_][A-Za-z0-9_]*)\\s*\\(");
    std::set<std::pair<std::string, std::size_t>> reported;

    // DFS from each tagged root; exempt lines prune both their
    // allocation sites and their call edges.
    struct Walker
    {
        const std::map<std::string,
                       std::vector<const FunctionDef *>> &byName;
        std::set<std::string> visited;
        std::vector<std::string> path;
        std::set<std::pair<std::string, std::size_t>> &reported;

        void walk(const FunctionDef &fn)
        {
            path.push_back(fn.name);
            const SourceFile &f = *fn.file;
            for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i) {
                if (lineExempt(f, i, "hot-path-alloc"))
                    continue;
                if (checkLine(f.code[i])) {
                    // Contracts only allocate on failure; the
                    // exemption covers the macro's continuation
                    // lines too.
                    i = statementEnd(f, i, fn.bodyEnd);
                    continue;
                }
                // On the signature line only the inline body (after
                // the opening brace) counts: `std::string kind()`
                // is a declaration, not a construction.
                std::string line = f.code[i];
                if (i == fn.sigLine) {
                    const std::size_t brace = line.find('{');
                    line = brace == std::string::npos
                               ? std::string()
                               : line.substr(brace);
                }
                std::string what;
                if (allocSite(line, what) &&
                    reported.insert({f.rel, i}).second) {
                    std::string via;
                    for (const std::string &p : path)
                        via += (via.empty() ? "" : " -> ") + p;
                    violations.push_back(
                        {f.rel, i + 1, "hot-path-alloc",
                         what + " reachable from PCNN_HOT_PATH via " +
                             via});
                }
                auto begin = std::sregex_iterator(
                    line.begin(), line.end(), call_re);
                for (auto it = begin; it != std::sregex_iterator();
                     ++it) {
                    const std::string callee = (*it)[1];
                    if (isKeyword(callee) ||
                        visited.count(callee) != 0)
                        continue;
                    auto target = byName.find(callee);
                    if (target == byName.end())
                        continue;
                    visited.insert(callee);
                    for (const FunctionDef *t : target->second)
                        walk(*t);
                }
            }
            path.pop_back();
        }
    };

    for (const FunctionDef &fn : funcs) {
        if (!fn.hotPath)
            continue;
        Walker w{byName, {}, {}, reported};
        w.visited.insert(fn.name);
        w.walk(fn);
    }
}

void
ruleReaderCheck(const std::vector<FunctionDef> &funcs)
{
    static const std::regex read_re(
        "\\.read\\s*\\(|\\bmemcpy\\s*\\(|\\bfread\\s*\\(");
    static const std::regex guard_re(
        "\\breturn\\s+(false|nullptr|std::nullopt|\\{\\})|\\bthrow\\b");
    for (const FunctionDef &fn : funcs) {
        if (!fn.binaryReader)
            continue;
        const SourceFile &f = *fn.file;
        bool validated = false;
        for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i) {
            if (lineExempt(f, i, "reader-check"))
                continue;
            if (checkLine(f.code[i])) {
                // The whole multi-line macro is the validation; its
                // argument lines must not consume it (or trip the
                // read regex on e.g. a size expression).
                validated = true;
                i = statementEnd(f, i, fn.bodyEnd);
                continue;
            }
            if (std::regex_search(f.code[i], guard_re))
                validated = true;
            if (std::regex_search(f.code[i], read_re)) {
                if (!validated)
                    report(f, i, "reader-check",
                           "length-driven read in PCNN_BINARY_READER "
                           "'" + fn.name +
                               "' without a prior PCNN_CHECK or "
                               "early-failure guard");
                validated = false; // each read needs a fresh guard
            }
        }
    }
}

// -------------------------------------------------------------- main

bool
ccOrHh(const fs::path &p)
{
    return p.extension() == ".cc" || p.extension() == ".hh";
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    std::vector<fs::path> explicit_files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
            root = argv[++i];
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: pcnn_analyze [--root DIR] [file...]\n");
            return 0;
        } else {
            explicit_files.push_back(argv[i]);
        }
    }
    root = fs::absolute(root).lexically_normal();

    std::vector<std::pair<fs::path, std::string>> targets;
    if (explicit_files.empty()) {
        if (!fs::is_directory(root / "src")) {
            std::fprintf(stderr,
                         "pcnn_analyze: %s has no src/ (pass --root)\n",
                         root.string().c_str());
            return 2;
        }
        for (const char *top :
             {"src", "tests", "bench", "tools", "examples"}) {
            const fs::path dir = root / top;
            if (!fs::is_directory(dir))
                continue;
            for (const auto &e :
                 fs::recursive_directory_iterator(dir)) {
                if (!e.is_regular_file() || !ccOrHh(e.path()))
                    continue;
                const std::string rel =
                    e.path().lexically_relative(root).generic_string();
                if (rel.find("analyze_fixtures") != std::string::npos)
                    continue;
                targets.push_back({e.path(), rel});
            }
        }
    } else {
        for (const fs::path &p : explicit_files) {
            if (!fs::is_regular_file(p)) {
                std::fprintf(stderr, "pcnn_analyze: no such file %s\n",
                             p.string().c_str());
                return 2;
            }
            const fs::path abs = fs::absolute(p).lexically_normal();
            std::string rel =
                abs.lexically_relative(root).generic_string();
            if (rel.empty() || rel.rfind("..", 0) == 0)
                rel = "src/" + abs.filename().string();
            targets.push_back({abs, rel});
        }
    }
    std::sort(targets.begin(), targets.end(),
              [](const auto &a, const auto &b) {
                  return a.second < b.second;
              });

    std::vector<SourceFile> files(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i)
        loadFile(targets[i].first, targets[i].second, files[i]);

    const bool fixture_mode = !explicit_files.empty();
    std::vector<FunctionDef> funcs;
    for (const SourceFile &f : files) {
        const bool in_src = underDir(f.rel, "src/");
        const bool is_hh = f.rel.size() > 3 &&
                           f.rel.compare(f.rel.size() - 3, 3, ".hh") ==
                               0;
        if (in_src || fixture_mode) {
            ruleRawNew(f);
            ruleMutexGuard(f);
            if (is_hh)
                ruleIncludeGuard(f);
            if (!is_hh && !underDir(f.rel, "src/common/"))
                ruleMutableGlobal(f);
            extractFunctions(f, funcs);
        }
        ruleLibcRand(f);
    }
    ruleHotPathAlloc(funcs);
    ruleReaderCheck(funcs);

    std::sort(violations.begin(), violations.end(),
              [](const Violation &a, const Violation &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    for (const Violation &v : violations)
        std::printf("%s:%zu: %s: %s\n", v.file.c_str(), v.line,
                    v.rule.c_str(), v.message.c_str());
    if (violations.empty()) {
        std::printf("pcnn_analyze: clean (%zu files, %zu functions)\n",
                    files.size(), funcs.size());
        return 0;
    }
    std::printf("pcnn_analyze: %zu violation(s)\n", violations.size());
    return 1;
}
