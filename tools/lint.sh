#!/usr/bin/env bash
#
# Repository lint gate. Runs three layers:
#
#   1. clang-format (check mode) over all C++ sources — skipped with a
#      note when clang-format is not installed.
#   2. clang-tidy over src/ using .clang-tidy — skipped when
#      clang-tidy or a compile_commands.json is missing.
#   3. The project analyzer (tools/pcnn_analyze): raw new/delete,
#      libc randomness, include-guard naming, mutable globals,
#      mutex fields without PCNN_GUARDED_BY, hot-path allocation
#      reachability and binary-reader validation. One rule engine,
#      one exemption syntax (`// pcnn-analyze: allow(rule): why`);
#      see tests/analyze_fixtures/ for one example per rule. The
#      analyzer binary is built if missing (plain C++17, seconds).
#
# Exit status is non-zero if any executed layer finds a problem.
# Usage: tools/lint.sh [--format-fix]

set -u
cd "$(dirname "$0")/.."

fail=0
note() { printf '%s\n' "$*"; }
err()
{
    printf 'lint: %s\n' "$*" >&2
    fail=1
}

cxx_sources()
{
    find src tests bench tools examples -name '*.cc' -o -name '*.hh' \
        2>/dev/null | sort
}

# ---------------------------------------------------- 1. clang-format
if command -v clang-format > /dev/null 2>&1; then
    if [ "${1:-}" = "--format-fix" ]; then
        cxx_sources | xargs clang-format -i
        note "clang-format: rewrote sources in place"
    elif ! cxx_sources | xargs clang-format --dry-run -Werror \
        > /dev/null 2>&1; then
        err "clang-format check failed (run tools/lint.sh --format-fix)"
    else
        note "clang-format: clean"
    fi
else
    note "clang-format: not installed, skipping"
fi

# ------------------------------------------------------ 2. clang-tidy
if command -v clang-tidy > /dev/null 2>&1; then
    compdb=""
    for d in build build-asan build-tsan; do
        if [ -f "$d/compile_commands.json" ]; then
            compdb="$d"
            break
        fi
    done
    if [ -n "$compdb" ]; then
        if ! find src -name '*.cc' | sort |
            xargs clang-tidy -p "$compdb" --quiet; then
            err "clang-tidy found problems"
        else
            note "clang-tidy: clean"
        fi
    else
        note "clang-tidy: no compile_commands.json, skipping" \
            "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
    fi
else
    note "clang-tidy: not installed, skipping"
fi

# ----------------------------------------------- 3. project analyzer
# The grep/awk rules this layer used to carry moved into
# tools/pcnn_analyze so the same engine (and the same allow-comment
# exemption syntax) serves the shell gate, the test suite and CI.
analyze=""
for d in build build-asan build-tsan; do
    if [ -x "$d/tools/pcnn_analyze" ]; then
        analyze="$d/tools/pcnn_analyze"
        break
    fi
done
if [ -z "$analyze" ]; then
    # No configured build tree: the analyzer is dependency-free
    # C++17, so compile it directly into a scratch location.
    analyze="${TMPDIR:-/tmp}/pcnn_analyze.$$"
    if ! ${CXX:-c++} -std=c++17 -O1 -o "$analyze" \
        tools/pcnn_analyze.cc; then
        err "could not build tools/pcnn_analyze"
        analyze=""
    fi
fi
if [ -n "$analyze" ]; then
    if ! "$analyze" --root .; then
        err "pcnn_analyze found problems"
    fi
fi

if [ "$fail" -ne 0 ]; then
    note "lint: FAILED"
else
    note "lint: OK"
fi
exit "$fail"
