#!/usr/bin/env bash
#
# Repository lint gate. Runs three layers:
#
#   1. clang-format (check mode) over all C++ sources — skipped with a
#      note when clang-format is not installed.
#   2. clang-tidy over src/ using .clang-tidy — skipped when
#      clang-tidy or a compile_commands.json is missing.
#   3. Custom grep/awk rules that need no toolchain:
#        - no raw `new` / `delete` in src/ (containers and
#          std::unique_ptr own everything; `unique_ptr<T>(new T...)`
#          is exempt — it is the only way to heap-construct through
#          a private copy ctor, and ownership transfers in the same
#          expression);
#        - no std::rand/srand/random_shuffle (determinism: all
#          randomness goes through common/random.hh);
#        - include guards must be derived from the header path
#          (src/pcnn/task.hh -> PCNN_PCNN_TASK_HH);
#        - no file-scope mutable globals outside src/common/
#          (thread_local scratch is exempt: it is per-thread state,
#          not shared).
#
# Exit status is non-zero if any executed layer finds a problem.
# Usage: tools/lint.sh [--format-fix]

set -u
cd "$(dirname "$0")/.."

fail=0
note() { printf '%s\n' "$*"; }
err()
{
    printf 'lint: %s\n' "$*" >&2
    fail=1
}

cxx_sources()
{
    find src tests bench tools examples -name '*.cc' -o -name '*.hh' \
        2>/dev/null | sort
}

# ---------------------------------------------------- 1. clang-format
if command -v clang-format > /dev/null 2>&1; then
    if [ "${1:-}" = "--format-fix" ]; then
        cxx_sources | xargs clang-format -i
        note "clang-format: rewrote sources in place"
    elif ! cxx_sources | xargs clang-format --dry-run -Werror \
        > /dev/null 2>&1; then
        err "clang-format check failed (run tools/lint.sh --format-fix)"
    else
        note "clang-format: clean"
    fi
else
    note "clang-format: not installed, skipping"
fi

# ------------------------------------------------------ 2. clang-tidy
if command -v clang-tidy > /dev/null 2>&1; then
    compdb=""
    for d in build build-asan build-tsan; do
        if [ -f "$d/compile_commands.json" ]; then
            compdb="$d"
            break
        fi
    done
    if [ -n "$compdb" ]; then
        if ! find src -name '*.cc' | sort |
            xargs clang-tidy -p "$compdb" --quiet; then
            err "clang-tidy found problems"
        else
            note "clang-tidy: clean"
        fi
    else
        note "clang-tidy: no compile_commands.json, skipping" \
            "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
    fi
else
    note "clang-tidy: not installed, skipping"
fi

# ---------------------------------------------------- 3. custom rules

# Raw new/delete in src/ (comments and strings excluded by stripping
# // tails; the codebase has no /* */ code comments).
raw_alloc=$(grep -rn --include='*.cc' --include='*.hh' \
    -E '\bnew\b[[:space:]]+[A-Za-z_(]|\bdelete\b[[:space:]]*(\[\])?[[:space:]]*[A-Za-z_(]' \
    src | sed 's://.*$::' |
    grep -vE ':[0-9]+:[[:space:]]*(\*|/\*)' |
    grep -vE 'unique_ptr<[A-Za-z_:]+>\(new ' |
    grep -E '\bnew\b|\bdelete\b' || true)
if [ -n "$raw_alloc" ]; then
    err "raw new/delete in src/ (own memory with containers/unique_ptr):
$raw_alloc"
else
    note "raw new/delete: clean"
fi

# Non-deterministic libc randomness.
libc_rand=$(grep -rn --include='*.cc' --include='*.hh' \
    -E '\b(std::)?s?rand(om_shuffle)?[[:space:]]*\(' \
    src tests bench tools examples 2>/dev/null || true)
if [ -n "$libc_rand" ]; then
    err "libc randomness (use common/random.hh Rng):
$libc_rand"
else
    note "libc randomness: clean"
fi

# Include-guard naming: PCNN_<PATH_FROM_SRC>_HH.
guard_bad=""
for f in $(find src -name '*.hh' | sort); do
    want="PCNN_$(echo "${f#src/}" | tr 'a-z/.' 'A-Z__')"
    if ! grep -q "^#ifndef ${want}\$" "$f"; then
        guard_bad="$guard_bad
$f: expected guard $want"
    fi
done
if [ -n "$guard_bad" ]; then
    err "include-guard naming:$guard_bad"
else
    note "include guards: clean"
fi

# File-scope mutable globals outside src/common/. Heuristic: a
# column-0 declaration ending in `;` with an initializer or empty
# braces, that is not const/constexpr/using/extern/thread_local and
# is not a function (no parens in the declarator head).
globals=$(grep -rn --include='*.cc' \
    -E '^[A-Za-z_][A-Za-z0-9_:<>,&* ]* [a-zA-Z_][A-Za-z0-9_]*( =.*|\{[^)]*\})?;$' \
    src |
    grep -vE 'const|constexpr|using|typedef|extern|thread_local|\(' |
    grep -v '^src/common/' || true)
if [ -n "$globals" ]; then
    err "file-scope mutable globals outside src/common/:
$globals"
else
    note "mutable globals: clean"
fi

if [ "$fail" -ne 0 ]; then
    note "lint: FAILED"
else
    note "lint: OK"
fi
exit "$fail"
