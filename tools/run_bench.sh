#!/usr/bin/env bash
# Run the current PR's benchmark snapshot.
#
# Usage: tools/run_bench.sh [build-dir] [out.json]
#
# Defaults: build directory ./build, output BENCH_pr9.json in the
# repository root. Historical BENCH_pr*.json snapshots are frozen
# artifacts of the PRs that produced them — this script no longer
# regenerates them (re-running old suites on a different host only
# destroys the numbers the docs cite).
#
# BENCH_pr9.json records the compiled-graph A/B (DESIGN.md section
# 5j): every model-zoo net at batch 1 and 16, each measured with the
# legacy ping-pong executor (graph:0) and the compiled graph with its
# static arena plan (graph:1). Rows carry img/s, steady_allocs (must
# be 0 when alloc_counting = 1), steady_mem_bytes (the measured
# path's steady activation+scratch footprint), baseline_scratch_bytes
# (the legacy chain's footprint on a fresh twin net — the memory the
# arena replaces), and peak_arena_bytes (the single per-net arena
# allocation; 0 on legacy rows). The acceptance numbers are the
# batch-1 MiniInception img/s uplift on the graph:1 row and
# peak_arena_bytes <= 70% of baseline_scratch_bytes on the MiniVgg
# and MiniInception batch-16 rows. The plain e2e family
# (BM_E2EMini*) rides along unfiltered for latency context.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
graph_json="${2:-$repo_root/BENCH_pr9.json}"

run_bench() {
    local bench_bin="$1" out_json="$2" filter="${3:-}"
    if [[ ! -x "$bench_bin" ]]; then
        echo "error: $bench_bin not built; run:" >&2
        echo "  cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
        exit 1
    fi
    local args=()
    [[ -n "$filter" ]] && args+=("--benchmark_filter=$filter")
    # Old google-benchmark: --benchmark_min_time takes a bare double
    # (s). 1 s/row: the 1-core bench host is noisy at 0.25 s.
    "$bench_bin" "${args[@]}" \
        --benchmark_min_time=1 \
        --benchmark_format=json \
        --benchmark_out="$out_json" \
        --benchmark_out_format=json
    echo "wrote $out_json"
}

# The e2e nets read the per-host tune cache; sweep and persist it
# first so dispatched kernels never skip.
autotune_bin="$build_dir/tools/pcnn_autotune"
if [[ ! -x "$autotune_bin" ]]; then
    echo "error: $autotune_bin not built; run:" >&2
    echo "  cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
    exit 1
fi
"$autotune_bin" --reps 2

run_bench "$build_dir/bench/bench_e2e_models" "$graph_json" \
    'BM_E2EGraph|BM_E2EMini[A-Za-z]*/[0-9]+/100'
