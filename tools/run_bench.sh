#!/usr/bin/env bash
# Run the current PR's benchmark snapshot.
#
# Usage: tools/run_bench.sh [build-dir] [out.json]
#
# Defaults: build directory ./build, output BENCH_pr10.json in the
# repository root. Historical BENCH_pr*.json snapshots are frozen
# artifacts of the PRs that produced them — this script no longer
# regenerates them (re-running old suites on a different host only
# destroys the numbers the docs cite).
#
# BENCH_pr10.json records the multi-tenant serving engine (DESIGN.md
# section 5k) under a Zipf-weighted three-model mix with the Table II
# class split: an interactive-only baseline, sequential isolated
# per-model runs, and the mixed run with background saturating the
# spare capacity. The acceptance numbers are in the JSON's
# "acceptance" block: mixed interactive p99 <= 1.25x the
# interactive-only p99, aggregate mixed throughput >= 0.9x the
# sequential isolated baseline, bitwise_threads_ok = 1, and
# steady_allocs = 0 on every row (alloc_counting permitting). The
# bench runs with PCNN_GRAPH=1 so replicas adopt the shared compiled
# schedule and the arena gauges are live.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
mt_json="${2:-$repo_root/BENCH_pr10.json}"

# The nets read the per-host tune cache; sweep and persist it first
# so dispatched kernels never skip.
autotune_bin="$build_dir/tools/pcnn_autotune"
if [[ ! -x "$autotune_bin" ]]; then
    echo "error: $autotune_bin not built; run:" >&2
    echo "  cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
    exit 1
fi
"$autotune_bin" --reps 2

mt_bin="$build_dir/bench/bench_multitenant"
if [[ ! -x "$mt_bin" ]]; then
    echo "error: $mt_bin not built; run:" >&2
    echo "  cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
    exit 1
fi
PCNN_GRAPH=1 "$mt_bin" "$mt_json"
echo "wrote $mt_json"
