#!/usr/bin/env bash
# Run the CPU-substrate microbenches and snapshot the results as JSON.
#
# Usage: tools/run_bench.sh [build-dir] [output.json]
#
# Defaults: build directory ./build, output BENCH_pr1.json in the
# repository root. The snapshot records SGEMM / im2col / conv-forward
# throughput (including the AlexNet CONV2 acceptance shape) at 1..4
# pool lanes; thread counts above the host core count are expected to
# be flat, not faster — the guarantee under test is that they stay
# bitwise identical, which tests/test_parallel.cc asserts.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_pr1.json}"

bench_bin="$build_dir/bench/bench_micro_kernels"
if [[ ! -x "$bench_bin" ]]; then
    echo "error: $bench_bin not built; run:" >&2
    echo "  cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
    exit 1
fi

# Old google-benchmark: --benchmark_min_time takes a bare double (s).
"$bench_bin" \
    --benchmark_min_time=0.25 \
    --benchmark_format=json \
    --benchmark_out="$out_json" \
    --benchmark_out_format=json

echo "wrote $out_json"
