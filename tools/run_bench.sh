#!/usr/bin/env bash
# Run the benchmark suites and snapshot the results as JSON.
#
# Usage: tools/run_bench.sh [build-dir] [micro.json] [e2e.json] \
#            [algo.json] [serve.json] [tier.json] [alloc.json] \
#            [quant.json]
#
# Defaults: build directory ./build, micro-kernel output
# BENCH_pr1.json, end-to-end model output BENCH_pr3.json,
# per-conv-algorithm output BENCH_pr4.json, serving-engine
# output BENCH_pr5.json, kernel-tier sweep output BENCH_pr6.json,
# allocation-probe snapshot BENCH_pr7.json, and int8 quantized-GEMM
# snapshot BENCH_pr8.json in the repository root.
#
# BENCH_pr1.json records SGEMM / im2col / conv-forward throughput
# (including the AlexNet CONV2 acceptance shape) at 1..4 pool lanes;
# thread counts above the host core count are expected to be flat,
# not faster — the guarantee under test is that they stay bitwise
# identical, which tests/test_parallel.cc asserts.
#
# BENCH_pr3.json records whole-network forward latency for the
# model-zoo nets (MiniAlexNet / MiniVgg / MiniInception) at batch
# 1/4/16, full-resolution and 25%-perforated — the zero-repack hot
# path acceptance numbers (DESIGN.md section 5d).
#
# BENCH_pr4.json records the per-conv-layer algorithm breakdown
# (im2col vs winograd vs cost-model dispatch on the MiniVgg and
# VGG-16 3x3 shapes at batch 1), the winograd microbench, and the
# ReLU-folding A/B — the conv-algorithm dispatch acceptance numbers
# (DESIGN.md section 5e).
#
# BENCH_pr6.json records the SIMD kernel-tier sweep: the prepacked
# SGEMM hot path at fixed square shapes and the e2e conv GEMM shapes
# (AlexNet CONV2, VGG-16 CONV2_1/CONV3_1), each at three kernel
# configurations — portable (the pre-dispatch baseline), the
# runtime-dispatched best tier at its cache-derived default blocking,
# and the per-host autotuned winner (pcnn_autotune is run first to
# guarantee a tune cache exists). Every row carries a
# bitwise_threads_ok counter asserting the per-tier determinism
# contract at 1/2/4 pool lanes, and the JSON context records the CPU
# model, SIMD feature flags, and cache sizes the numbers depend on
# (DESIGN.md section 5g).
#
# BENCH_pr7.json records the allocation-probe acceptance rows
# (DESIGN.md section 5h): the full-resolution e2e forwards with
# their steady_allocs counter, which must be 0 on every row when
# the build has PCNN_COUNT_ALLOCS (alloc_counting = 1) — the
# runtime cross-check of the pcnn_analyze hot-path-alloc rule. The
# serving engine's closed/open-loop rows in BENCH_pr5.json carry
# the same counter for the post-warmup worker loop.
#
# BENCH_pr8.json records the int8 quantized GEMM sweep (DESIGN.md
# section 5i): the full per-forward int8 cost (activation
# quantize+pack plus qgemm with the fused dequant epilogue) on the
# batch-1 conv GEMM acceptance shapes (AlexNet CONV2, VGG-16
# CONV2_1/CONV3_1), at the portable and dispatched-best int8 tiers.
# Each row carries speedup_vs_fp32 (a same-methodology tuned-fp32
# sgemmPrepacked baseline on the identical shape; the large-K rows
# must clear 2x at the dispatched tier), bitwise_threads_ok (the
# cross-thread bitwise-identity contract), and steady_allocs (must
# be 0 when alloc_counting = 1). The network-level fp32-vs-int8 A/B
# rows (BM_E2EQuantized, with top1_match / entropy_delta accuracy
# proxies) ride along in BENCH_pr3.json's unfiltered e2e run.
#
# BENCH_pr5.json records the concurrent serving engine: closed-loop
# throughput at 1/2/4 worker replicas (with a bitwise logits check
# across worker counts), an open-loop Poisson arrival sweep against
# the deadline-aware batcher, and a cross-check of the batching
# behaviour against the analytical ServingSimulator (DESIGN.md
# section 5f). Worker counts above the host core count are expected
# to be flat, not faster; the JSON records the host thread count.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
micro_json="${2:-$repo_root/BENCH_pr1.json}"
e2e_json="${3:-$repo_root/BENCH_pr3.json}"
algo_json="${4:-$repo_root/BENCH_pr4.json}"
serve_json="${5:-$repo_root/BENCH_pr5.json}"
tier_json="${6:-$repo_root/BENCH_pr6.json}"
alloc_json="${7:-$repo_root/BENCH_pr7.json}"
quant_json="${8:-$repo_root/BENCH_pr8.json}"

run_bench() {
    local bench_bin="$1" out_json="$2" filter="${3:-}"
    if [[ ! -x "$bench_bin" ]]; then
        echo "error: $bench_bin not built; run:" >&2
        echo "  cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
        exit 1
    fi
    local args=()
    [[ -n "$filter" ]] && args+=("--benchmark_filter=$filter")
    # Old google-benchmark: --benchmark_min_time takes a bare double (s).
    "$bench_bin" "${args[@]}" \
        --benchmark_min_time=0.25 \
        --benchmark_format=json \
        --benchmark_out="$out_json" \
        --benchmark_out_format=json
    echo "wrote $out_json"
}

# The tier sweep's "tuned" rows read the per-host tune cache; sweep
# and persist it first so they never skip.
autotune_bin="$build_dir/tools/pcnn_autotune"
if [[ ! -x "$autotune_bin" ]]; then
    echo "error: $autotune_bin not built; run:" >&2
    echo "  cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
    exit 1
fi
"$autotune_bin" --reps 2

run_bench "$build_dir/bench/bench_micro_kernels" "$micro_json"
run_bench "$build_dir/bench/bench_micro_kernels" "$tier_json" "SgemmTier"
run_bench "$build_dir/bench/bench_micro_kernels" "$quant_json" "Qgemm"
run_bench "$build_dir/bench/bench_e2e_models" "$e2e_json"
run_bench "$build_dir/bench/bench_e2e_models" "$algo_json" \
    "ConvAlgoLayer|ReluFolding"
run_bench "$build_dir/bench/bench_e2e_models" "$alloc_json" \
    'BM_E2EMini[A-Za-z]*/[0-9]+/100'

# The serving-engine bench is a plain binary (real threads, not
# google-benchmark); it writes its JSON itself.
serve_bin="$build_dir/bench/bench_serving_engine"
if [[ ! -x "$serve_bin" ]]; then
    echo "error: $serve_bin not built; run:" >&2
    echo "  cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
    exit 1
fi
"$serve_bin" "$serve_json"
