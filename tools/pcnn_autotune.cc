/**
 * @file
 * pcnn_autotune — offline per-host SGEMM autotuner front end.
 *
 * Sweeps micro-kernel tier x Kc/Mc/Nc x prefetch distance over the
 * model-zoo GEMM shapes (pcnn/offline/host_tuner.hh) and persists the
 * winner in the versioned per-host tune cache. A run that finds a
 * valid cache for this host loads it and exits without sweeping;
 * --force re-sweeps unconditionally.
 *
 * Usage:
 *   pcnn_autotune [--cache FILE] [--quick] [--force] [--reps N]
 *
 *   --cache FILE  tune-cache path (default: $PCNN_TUNE_CACHE, else
 *                 ~/.cache/pcnn/hosttune-v1.json)
 *   --quick       tiers-only sweep (CI smoke)
 *   --force       ignore an existing cache and re-sweep
 *   --reps N      timing repetitions per sweep point (default 3)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "pcnn/offline/host_tuner.hh"
#include "tensor/microkernel.hh"

using namespace pcnn;

int
main(int argc, char **argv)
{
    std::string cache = hostTuneCachePath();
    HostTuneOptions opts;
    bool force = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cache" && i + 1 < argc) {
            cache = argv[++i];
        } else if (arg == "--quick") {
            opts.quick = true;
        } else if (arg == "--force") {
            force = true;
        } else if (arg == "--reps" && i + 1 < argc) {
            opts.reps = std::size_t(std::atoi(argv[++i]));
        } else {
            std::fprintf(stderr,
                         "usage: pcnn_autotune [--cache FILE] "
                         "[--quick] [--force] [--reps N]\n");
            return 2;
        }
    }

    const CpuFeatures &cpu = cpuFeatures();
    const CacheInfo &ci = cacheInfo();
    std::printf("host: %s\n", cpu.model.c_str());
    std::printf("features: %s\n", cpu.str().c_str());
    std::printf("caches: l1d=%zu l2=%zu l3=%zu\n", ci.l1d, ci.l2,
                ci.l3);
    std::printf("cache file: %s\n", cache.c_str());

    if (force)
        std::remove(cache.c_str());
    const HostTuneResult res = ensureHostTuned(cache, opts);

    if (res.fromCache) {
        std::printf("loaded existing tune cache (no sweep)\n");
    } else {
        std::printf("swept %zu configurations:\n", res.trials.size());
        for (const HostTuneTrial &t : res.trials)
            std::printf(
                "  %-8s kc=%-4zu mc=%-4zu nc=%-5zu pf=%-2zu %8.3f ms\n",
                kernelTierName(t.tier), t.blocking.kc, t.blocking.mc,
                t.blocking.nc, t.blocking.prefetch,
                t.seconds * 1e3);
    }

    const HostTuneConfig &cfg = res.config;
    std::printf("winner: tier=%s kc=%zu mc=%zu nc=%zu prefetch=%zu\n",
                kernelTierName(cfg.tier), cfg.blocking.kc,
                cfg.blocking.mc, cfg.blocking.nc,
                cfg.blocking.prefetch);
    if (!applyHostTune(cfg))
        std::printf("note: PCNN_KERNEL_TIER override kept; config "
                    "saved but not applied to this process\n");
    return 0;
}
