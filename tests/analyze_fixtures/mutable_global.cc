// Fixture: mutable-global — file-scope mutable state outside
// src/common/ must be flagged.

int hitCounter = 0;

int
bumpCounter()
{
    return ++hitCounter;
}
