// Fixture: raw-new — an unmanaged allocation must be flagged.

int *
leakAnInt()
{
    return new int(7);
}
