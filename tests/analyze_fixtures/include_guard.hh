// Fixture: include-guard — the guard must be derived from the file
// path (PCNN_INCLUDE_GUARD_HH here), not invented.
#ifndef SOME_OTHER_GUARD_HH
#define SOME_OTHER_GUARD_HH

int fixtureValue();

#endif // SOME_OTHER_GUARD_HH
