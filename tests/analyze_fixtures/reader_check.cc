// Fixture: reader-check — a length-driven read in a
// PCNN_BINARY_READER without a preceding PCNN_CHECK or early-failure
// guard must be flagged.

#include <cstring>

#include "common/tags.hh"

namespace pcnn {

PCNN_BINARY_READER
void
copyHeader(char *dst, const char *src, unsigned long n)
{
    std::memcpy(dst, src, n);
}

} // namespace pcnn
