// Fixture: reader-check on a plan-v4 style schedule section — a
// count-driven loop of reads in a PCNN_BINARY_READER with no
// early-failure guard between reading the count and consuming the
// records must be flagged (the real readSchedule guards every step).

#include <cstring>

#include "common/tags.hh"

namespace pcnn {

PCNN_BINARY_READER
unsigned long
readScheduleSection(const unsigned char *bytes, unsigned long *ops)
{
    const unsigned long n_ops = bytes[0];
    std::memcpy(ops, bytes + 1, n_ops * sizeof *ops);
    return n_ops;
}

} // namespace pcnn
