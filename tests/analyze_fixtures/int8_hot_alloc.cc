// Fixture: hot-path-alloc on the int8 path — a quantized micro-kernel
// that builds its accumulator tile on the heap instead of in
// registers must be flagged (the real kernels use C arrays).

#include <cstdint>
#include <vector>

#include "common/tags.hh"

namespace pcnn {

PCNN_HOT_PATH
void
qgemmTileInt8(const std::int8_t *a, const std::uint8_t *b, float *c)
{
    std::vector<std::int32_t> acc(8);
    for (int i = 0; i < 8; ++i)
        acc[std::size_t(i)] = std::int32_t(a[i]) * std::int32_t(b[i]);
    for (int i = 0; i < 8; ++i)
        c[i] = float(acc[std::size_t(i)]);
}

} // namespace pcnn
