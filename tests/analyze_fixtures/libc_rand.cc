// Fixture: libc-rand — libc randomness must be flagged (the project
// requires the seeded pcnn::Rng for reproducibility).

#include <cstdlib>

int
rollDie()
{
    return std::rand() % 6;
}
