// Fixture: mutex-guard — a Mutex field whose file names no
// PCNN_GUARDED_BY partner protects nothing and must be flagged.
#ifndef PCNN_MUTEX_GUARD_HH
#define PCNN_MUTEX_GUARD_HH

#include "common/mutex.hh"

namespace pcnn {

class UnguardedCounter
{
  public:
    void bump();

  private:
    Mutex mu;
    int value = 0;
};

} // namespace pcnn

#endif // PCNN_MUTEX_GUARD_HH
