// Fixture: hot-path-alloc — an allocating primitive reachable from a
// PCNN_HOT_PATH function without a grow-only allow must be flagged.

#include <vector>

#include "common/tags.hh"

namespace pcnn {

PCNN_HOT_PATH
void
appendSample(std::vector<float> &log, float v)
{
    log.push_back(v);
}

} // namespace pcnn
