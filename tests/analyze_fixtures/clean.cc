// Fixture: a file every rule accepts — hot path without allocations,
// guarded reads, no globals, no libc randomness.

#include <cstring>

#include "common/check.hh"
#include "common/tags.hh"

namespace pcnn {

PCNN_HOT_PATH
float
sumInPlace(const float *v, unsigned long n)
{
    float acc = 0.0f;
    for (unsigned long i = 0; i < n; ++i)
        acc += v[i];
    return acc;
}

PCNN_BINARY_READER
bool
guardedCopy(char *dst, const char *src, unsigned long n,
            unsigned long cap)
{
    if (n > cap)
        return false;
    std::memcpy(dst, src, n);
    return true;
}

} // namespace pcnn
