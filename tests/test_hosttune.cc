/**
 * @file
 * Per-host tune-cache contracts (pcnn/offline/host_tuner.hh): the
 * serialize/parse round trip, the hostile-input stance (truncated,
 * garbage, wrong-version, unknown-tier, out-of-range documents all
 * rejected with the defaults left in force), host-identity matching,
 * and the load-don't-resweep behavior of ensureHostTuned.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "pcnn/offline/host_tuner.hh"
#include "tensor/microkernel.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {
namespace {

/** Restore kernel dispatch state on scope exit. */
class DispatchStateGuard
{
  public:
    ~DispatchStateGuard()
    {
        resetKernelTier();
        resetBlocking();
    }
};

HostTuneConfig
sampleConfig()
{
    HostTuneConfig cfg = HostTuneConfig::forThisHost();
    cfg.blocking = GemmBlocking{96, 240, 320, 4};
    return cfg;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(f) << path;
    f << text;
}

TEST(HostTune, SerializeParseRoundTrip)
{
    const HostTuneConfig cfg = sampleConfig();
    HostTuneConfig back;
    std::string err;
    ASSERT_TRUE(parseHostTune(serializeHostTune(cfg), back, err))
        << err;
    EXPECT_EQ(back.version, cfg.version);
    EXPECT_EQ(back.cpuModel, cfg.cpuModel);
    EXPECT_EQ(back.features, cfg.features);
    EXPECT_EQ(back.l1d, cfg.l1d);
    EXPECT_EQ(back.l2, cfg.l2);
    EXPECT_EQ(back.l3, cfg.l3);
    EXPECT_EQ(back.tier, cfg.tier);
    EXPECT_TRUE(back.blocking == cfg.blocking);
}

TEST(HostTune, ParseRejectsTruncatedDocuments)
{
    const std::string doc = serializeHostTune(sampleConfig());
    HostTuneConfig out;
    std::string err;
    // Every proper prefix must fail cleanly, never crash or accept.
    for (std::size_t cut = 0; cut < doc.size();
         cut += 1 + cut / 8)
        EXPECT_FALSE(parseHostTune(doc.substr(0, cut), out, err))
            << "prefix of length " << cut << " accepted";
}

TEST(HostTune, ParseRejectsGarbage)
{
    HostTuneConfig out;
    std::string err;
    EXPECT_FALSE(parseHostTune("", out, err));
    EXPECT_FALSE(parseHostTune("not json at all", out, err));
    EXPECT_FALSE(parseHostTune("{}", out, err)); // all keys missing
    EXPECT_FALSE(parseHostTune("[1,2,3]", out, err));
    EXPECT_FALSE(parseHostTune("{\"version\": -1}", out, err));
    EXPECT_FALSE(parseHostTune(
        "{\"version\": 99999999999999999999999999}", out, err));
}

TEST(HostTune, ParseRejectsWrongVersion)
{
    std::string doc = serializeHostTune(sampleConfig());
    const std::string from = "\"version\": 1";
    doc.replace(doc.find(from), from.size(), "\"version\": 2");
    HostTuneConfig out;
    std::string err;
    EXPECT_FALSE(parseHostTune(doc, out, err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST(HostTune, ParseRejectsUnknownTier)
{
    HostTuneConfig cfg = sampleConfig();
    std::string doc = serializeHostTune(cfg);
    const std::string from =
        std::string("\"tier\": \"") + kernelTierName(cfg.tier) + "\"";
    doc.replace(doc.find(from), from.size(), "\"tier\": \"warp9\"");
    HostTuneConfig out;
    std::string err;
    EXPECT_FALSE(parseHostTune(doc, out, err));
    EXPECT_NE(err.find("tier"), std::string::npos) << err;
}

TEST(HostTune, ParseRejectsDuplicateUnknownAndTrailing)
{
    const std::string doc = serializeHostTune(sampleConfig());
    HostTuneConfig out;
    std::string err;
    // Duplicate member.
    std::string dup = doc;
    dup.insert(dup.find("\"version\""), "\"version\": 1,\n  ");
    EXPECT_FALSE(parseHostTune(dup, out, err));
    // Unknown member.
    std::string unknown = doc;
    unknown.insert(unknown.find("\"version\""), "\"bogus\": 1,\n  ");
    EXPECT_FALSE(parseHostTune(unknown, out, err));
    // Trailing content after the object.
    EXPECT_FALSE(parseHostTune(doc + "x", out, err));
}

TEST(HostTune, ParseRejectsOutOfRangeValues)
{
    HostTuneConfig out;
    std::string err;
    for (const char *from_to : {"\"kc\": 0", "\"mc\": 0", "\"nc\": 0",
                                "\"prefetch\": 1000000",
                                "\"kc\": 999999999"}) {
        std::string doc = serializeHostTune(sampleConfig());
        const std::string key =
            std::string(from_to).substr(0, std::string(from_to).find(':'));
        const std::size_t at = doc.find(key + ":");
        ASSERT_NE(at, std::string::npos);
        const std::size_t end = doc.find_first_of(",\n", at);
        doc.replace(at, end - at, from_to);
        EXPECT_FALSE(parseHostTune(doc, out, err)) << from_to;
    }
}

TEST(HostTune, SaveCreatesParentDirsAndLoadRoundTrips)
{
    const HostTuneConfig cfg = sampleConfig();
    const std::string path = tmpPath("nested/dirs/hosttune-v1.json");
    ASSERT_TRUE(saveHostTune(cfg, path));
    HostTuneConfig back;
    std::string err;
    ASSERT_TRUE(loadHostTune(path, back, err)) << err;
    EXPECT_EQ(back.tier, cfg.tier);
    EXPECT_TRUE(back.blocking == cfg.blocking);
}

TEST(HostTune, LoadRejectsMissingFile)
{
    HostTuneConfig out;
    std::string err;
    EXPECT_FALSE(
        loadHostTune(tmpPath("does-not-exist.json"), out, err));
    EXPECT_FALSE(err.empty());
}

TEST(HostTune, LoadRejectsForeignHost)
{
    HostTuneConfig cfg = sampleConfig();
    cfg.cpuModel = "Somebody Else's CPU @ 9.99GHz";
    const std::string path = tmpPath("foreign.json");
    ASSERT_TRUE(saveHostTune(cfg, path));
    HostTuneConfig out;
    std::string err;
    EXPECT_FALSE(loadHostTune(path, out, err));
    EXPECT_NE(err.find("host mismatch"), std::string::npos) << err;
}

TEST(HostTune, LoadRejectsUnsupportedTier)
{
    KernelTier unsupported = KernelTier::Portable;
    bool found = false;
    for (KernelTier t : {KernelTier::Neon, KernelTier::Avx2,
                         KernelTier::Avx512}) {
        if (!kernelTierSupported(t)) {
            unsupported = t;
            found = true;
            break;
        }
    }
    if (!found)
        GTEST_SKIP() << "every tier is supported on this host";
    HostTuneConfig cfg = sampleConfig();
    cfg.tier = unsupported;
    const std::string path = tmpPath("unsupported-tier.json");
    ASSERT_TRUE(saveHostTune(cfg, path));
    HostTuneConfig out;
    std::string err;
    EXPECT_FALSE(loadHostTune(path, out, err));
    EXPECT_NE(err.find("not supported"), std::string::npos) << err;
}

TEST(HostTune, CachePathHonorsEnvOverride)
{
    ASSERT_EQ(setenv("PCNN_TUNE_CACHE", "/tmp/my-tune.json", 1), 0);
    EXPECT_EQ(hostTuneCachePath(), "/tmp/my-tune.json");
    ASSERT_EQ(unsetenv("PCNN_TUNE_CACHE"), 0);
    EXPECT_NE(hostTuneCachePath().find("hosttune-v1.json"),
              std::string::npos);
}

TEST(HostTune, ApplyPinsTierAndBlocking)
{
    DispatchStateGuard guard;
    HostTuneConfig cfg = sampleConfig();
    cfg.tier = KernelTier::Portable; // supported everywhere
    ASSERT_TRUE(applyHostTune(cfg));
    EXPECT_TRUE(kernelTierPinned());
    EXPECT_TRUE(blockingPinned());
    EXPECT_EQ(activeKernelTier(), KernelTier::Portable);
    EXPECT_TRUE(activeBlocking() == cfg.blocking);
}

TEST(HostTune, TuneShapesNonEmptyAndDistinct)
{
    const std::vector<GemmShape> shapes = hostTuneShapes();
    ASSERT_FALSE(shapes.empty());
    for (std::size_t i = 0; i < shapes.size(); ++i) {
        EXPECT_GT(shapes[i].m * shapes[i].n * shapes[i].k, 0u);
        for (std::size_t j = i + 1; j < shapes.size(); ++j)
            EXPECT_FALSE(shapes[i].m == shapes[j].m &&
                         shapes[i].n == shapes[j].n &&
                         shapes[i].k == shapes[j].k)
                << "duplicate shape at " << i << "," << j;
    }
}

// The headline contract: the first run sweeps and persists, the
// second run loads without re-sweeping, and both agree.
TEST(HostTune, CacheOnceDeclinesAfterFirstGemm)
{
    DispatchStateGuard guard;
    // A valid, host-matching cache sits at the default path...
    const std::string path = tmpPath("once/hosttune-v1.json");
    ASSERT_TRUE(saveHostTune(sampleConfig(), path));
    ASSERT_EQ(setenv("PCNN_TUNE_CACHE", path.c_str(), 1), 0);

    // ...but a GEMM has already run in this process, so the bitwise
    // value of fp32 results is committed to the current blocking.
    float a[4] = {1, 2, 3, 4}, b[4] = {5, 6, 7, 8}, c[4];
    sgemm(false, false, 2, 2, 2, a, b, c);
    ASSERT_TRUE(gemmHasRun());

    const GemmBlocking before = activeBlocking();
    const KernelTier tier = activeKernelTier();
    EXPECT_FALSE(applyHostTuneCacheOnce())
        << "cache applied after a GEMM already ran";
    EXPECT_TRUE(activeBlocking() == before);
    EXPECT_EQ(activeKernelTier(), tier);
    EXPECT_FALSE(blockingPinned());

    // The outcome latches: later calls must not re-try either.
    EXPECT_FALSE(applyHostTuneCacheOnce());
    ASSERT_EQ(unsetenv("PCNN_TUNE_CACHE"), 0);
}

TEST(HostTune, EnsureHostTunedSweepsOnceThenLoads)
{
    DispatchStateGuard guard;
    const std::string path = tmpPath("ensure/hosttune-v1.json");
    // TempDir() is stable across runs; drop any cache a previous
    // test invocation persisted so the first ensure really sweeps.
    std::filesystem::remove(path);
    HostTuneOptions opts;
    opts.quick = true;
    opts.reps = 1;

    const HostTuneResult first = ensureHostTuned(path, opts);
    EXPECT_FALSE(first.fromCache);
    EXPECT_FALSE(first.trials.empty());
    EXPECT_TRUE(first.config.matchesThisHost());
    EXPECT_TRUE(kernelTierSupported(first.config.tier));

    const HostTuneResult second = ensureHostTuned(path, opts);
    EXPECT_TRUE(second.fromCache);
    EXPECT_TRUE(second.trials.empty());
    EXPECT_EQ(second.config.tier, first.config.tier);
    EXPECT_TRUE(second.config.blocking == first.config.blocking);

    // The sweep must leave the dispatch state it found in place.
    EXPECT_FALSE(kernelTierPinned());
    EXPECT_FALSE(blockingPinned());
}

} // namespace
} // namespace pcnn
