/**
 * @file
 * Tests for the zero-repack inference hot path: persistent packed
 * weight panels, generation-counter cache invalidation, the 1x1
 * im2col-free fast path, and grow-only conv scratch reuse. Every
 * comparison here is bitwise (EXPECT_EQ on floats), because the
 * packed path is documented to be bit-identical to the reference
 * SGEMM — see DESIGN.md section 5d.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/parallel.hh"
#include "common/random.hh"
#include "nn/conv_layer.hh"
#include "nn/model_zoo.hh"
#include "nn/network.hh"
#include "nn/serialize.hh"
#include "tensor/tensor.hh"
#include "tensor/tensor_ops.hh"
#include "train/sgd.hh"

namespace pcnn {
namespace {

std::vector<float>
randomVec(std::size_t n, Rng &rng)
{
    std::vector<float> v(n);
    for (float &x : v)
        x = float(rng.uniform(-1.0, 1.0));
    return v;
}

// ---------------------------------------------- prepacked vs. sgemm

/**
 * sgemmPrepacked(A, pack(op(B))) must be bitwise identical to
 * sgemm(A, op(B)) for both B orientations, at every thread count:
 * the packed panel holds exactly the values the reference path
 * materializes internally, and per-cell accumulation order is a pure
 * k-walk regardless of partitioning.
 */
TEST(Prepack, MatchesReferenceSgemmBitwiseAcrossThreadCounts)
{
    Rng rng(1234);
    const std::size_t m = 17, n = 23, k = 31;
    const auto a = randomVec(m * k, rng);
    const auto b_nt = randomVec(k * n, rng);  // B stored k x n
    const auto b_t = randomVec(n * k, rng);   // B stored n x k
    const auto c_seed = randomVec(m * n, rng);

    const std::size_t saved = threadCount();
    for (std::size_t threads : {1u, 2u, 4u}) {
        setThreadCount(threads);
        for (bool trans_b : {false, true}) {
            const float *b = trans_b ? b_t.data() : b_nt.data();

            std::vector<float> ref = c_seed;
            sgemm(false, trans_b, m, n, k, a.data(), b, ref.data(),
                  0.5f);

            // rows/cols describe op(B): k x n either way.
            PackedPanel panel;
            packWeights(trans_b, k, n, b, panel);
            EXPECT_EQ(panel.rows, k);
            EXPECT_EQ(panel.cols, n);

            std::vector<float> got = c_seed;
            sgemmPrepacked(m, n, k, a.data(), panel, got.data(),
                          0.5f);
            for (std::size_t i = 0; i < ref.size(); ++i)
                EXPECT_EQ(ref[i], got[i])
                    << "threads=" << threads
                    << " trans_b=" << trans_b << " i=" << i;
        }
    }
    setThreadCount(saved);
}

/** Repacking after a weight change must pick up the new values. */
TEST(Prepack, PackWeightsOverwritesStalePanel)
{
    Rng rng(77);
    const std::size_t rows = 6, cols = 9;
    auto w = randomVec(rows * cols, rng);

    PackedPanel panel;
    packWeights(false, rows, cols, w.data(), panel);
    w[7] += 1.0f;
    packWeights(false, rows, cols, w.data(), panel);
    EXPECT_EQ(panel.ptr()[7], w[7]);
}

// ----------------------------------------------- 1x1 fast path

ConvLayer
makeConv(Rng &rng, std::size_t in_c, std::size_t out_c,
         std::size_t kernel, std::size_t stride, std::size_t pad,
         std::size_t hw, std::size_t groups = 1)
{
    ConvSpec s;
    s.name = "t";
    s.inC = in_c;
    s.outC = out_c;
    s.kernel = kernel;
    s.stride = stride;
    s.pad = pad;
    s.inH = hw;
    s.inW = hw;
    s.groups = groups;
    return ConvLayer(s, rng);
}

/**
 * Replay a conv layer's generic (im2col) forward route outside the
 * layer: bias-seeded output planes, im2col expansion, then the same
 * beta=1 SGEMM. For a 1x1/stride-1/pad-0 layer the layer itself
 * skips im2col, so bitwise equality here proves the fast path and
 * the im2col path are interchangeable — the two routes differ only
 * in where the B panel comes from, never in kernel math.
 */
Tensor
im2colRouteReference(ConvLayer &layer, const Tensor &x)
{
    const ConvSpec &s = layer.spec();
    const std::size_t in_cg = s.inC / s.groups;
    const std::size_t out_cg = s.outC / s.groups;
    const std::size_t full = s.outH() * s.outW();
    ConvGeom g = s.geom();
    g.inC = in_cg;
    const std::size_t k = g.colRows();

    const Tensor &w = layer.params()[0]->value;
    const Tensor &b = layer.params()[1]->value;
    Tensor y(x.shape().n, s.outC, s.outH(), s.outW());
    std::vector<float> cols;
    for (std::size_t item = 0; item < x.shape().n; ++item)
        for (std::size_t grp = 0; grp < s.groups; ++grp) {
            const float *wg = w.data() +
                              grp * out_cg * in_cg * s.kernel *
                                  s.kernel;
            float *ybase = y.data() +
                           (item * s.outC + grp * out_cg) * full;
            for (std::size_t f = 0; f < out_cg; ++f)
                std::fill(ybase + f * full, ybase + (f + 1) * full,
                          b[grp * out_cg + f]);
            im2col(x, item, g, cols, grp * in_cg);
            sgemm(false, false, out_cg, full, k, wg, cols.data(),
                  ybase, 1.0f);
        }
    return y;
}

TEST(Prepack, OneByOnePassthroughPredicateAndCorrectness)
{
    Rng rng(5);
    ConvLayer fast = makeConv(rng, 4, 6, 1, 1, 0, 5);
    EXPECT_TRUE(fast.is1x1Passthrough());
    ConvLayer strided = makeConv(rng, 4, 6, 1, 2, 0, 5);
    EXPECT_FALSE(strided.is1x1Passthrough());
    ConvLayer padded = makeConv(rng, 4, 6, 3, 1, 1, 5);
    EXPECT_FALSE(padded.is1x1Passthrough());

    Tensor x(2, 4, 5, 5);
    Rng xr(6);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = float(xr.uniform(-1.0, 1.0));
    Tensor y = fast.forward(x, false);
    Tensor want = im2colRouteReference(fast, x);
    ASSERT_EQ(y.size(), want.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_EQ(want[i], y[i]) << "i=" << i;
}

/** Grouped 1x1 convs take the fast path per group. */
TEST(Prepack, Grouped1x1MatchesIm2colRoute)
{
    Rng rng(9);
    ConvLayer conv = makeConv(rng, 6, 8, 1, 1, 0, 4, /*groups=*/2);
    EXPECT_TRUE(conv.is1x1Passthrough());

    Tensor x(3, 6, 4, 4);
    Rng xr(10);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = float(xr.uniform(-1.0, 1.0));
    Tensor y = conv.forward(x, false);
    Tensor want = im2colRouteReference(conv, x);
    ASSERT_EQ(y.size(), want.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_EQ(want[i], y[i]) << "i=" << i;
}

// ------------------------------------- cache invalidation protocol

/**
 * Forward, SGD-step, forward again: the second forward must use the
 * post-step weights, i.e. the packed caches must notice the update.
 * Cross-check against a twin network built from the same seed whose
 * weights are overwritten to the post-step values before its FIRST
 * forward (so its caches are built fresh from those weights).
 */
TEST(Prepack, SgdStepInvalidatesPackedCaches)
{
    Rng rng_a(21);
    Network a = makeMiniInception(rng_a);
    Rng xr(22);
    Tensor x(1, 1, 16, 16);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = float(xr.uniform(-1.0, 1.0));

    // Warm a's packed caches, then train one step.
    (void)a.forward(x, false);
    Tensor logits = a.forward(x, true);
    a.backward(logits); // any gradient signal will do
    SgdOptimizer opt(SgdConfig{});
    opt.step(a.params());
    Tensor after = a.forward(x, false);

    // Twin: identical architecture, weights forced to a's post-step
    // values before any forward, so no stale cache can exist.
    Rng rng_b(21);
    Network b = makeMiniInception(rng_b);
    auto pa = a.params();
    auto pb = b.params();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        ASSERT_EQ(pa[i]->value.size(), pb[i]->value.size());
        pb[i]->value = pa[i]->value;
        pb[i]->markUpdated();
    }
    Tensor expect = b.forward(x, false);
    ASSERT_EQ(after.size(), expect.size());
    for (std::size_t i = 0; i < after.size(); ++i)
        EXPECT_EQ(expect[i], after[i]) << "i=" << i;
}

/**
 * deserializeWeights must also bump the generation counters: save,
 * perturb, reload, and the next forward must be bitwise equal to the
 * pre-perturbation output even though the perturbed forward warmed
 * the packed caches with different weights.
 */
TEST(Prepack, DeserializeInvalidatesPackedCaches)
{
    Rng rng(31);
    Network net = makeMiniAlexNet(rng);
    Rng xr(32);
    Tensor x(2, 1, 16, 16);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = float(xr.uniform(-1.0, 1.0));

    Tensor before = net.forward(x, false);
    const std::vector<std::uint8_t> snap = serializeWeights(net);

    for (Param *p : net.params()) {
        for (std::size_t i = 0; i < p->value.size(); ++i)
            p->value[i] += 0.25f;
        p->markUpdated();
    }
    Tensor perturbed = net.forward(x, false); // warms caches anew
    bool differs = false;
    for (std::size_t i = 0; i < before.size() && !differs; ++i)
        differs = before[i] != perturbed[i];
    ASSERT_TRUE(differs);

    ASSERT_TRUE(deserializeWeights(net, snap));
    Tensor restored = net.forward(x, false);
    for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_EQ(before[i], restored[i]) << "i=" << i;
}

/** Hand-edits that follow the markUpdated protocol are picked up. */
TEST(Prepack, MarkUpdatedRefreshesNextForward)
{
    Rng rng(41);
    ConvLayer conv = makeConv(rng, 3, 5, 1, 1, 0, 6);
    Tensor x(1, 3, 6, 6);
    Rng xr(42);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = float(xr.uniform(-1.0, 1.0));

    Tensor y0 = conv.forward(x, false);
    Param *w = conv.params()[0];
    const Tensor saved = w->value;
    for (std::size_t i = 0; i < w->value.size(); ++i)
        w->value[i] = -w->value[i];
    w->markUpdated();
    Tensor y1 = conv.forward(x, false);
    bool differs = false;
    for (std::size_t i = 0; i < y0.size() && !differs; ++i)
        differs = y0[i] != y1[i];
    EXPECT_TRUE(differs);

    w->value = saved;
    w->markUpdated();
    Tensor y2 = conv.forward(x, false);
    for (std::size_t i = 0; i < y0.size(); ++i)
        EXPECT_EQ(y0[i], y2[i]) << "i=" << i;
}

// --------------------------------------- scratch reuse correctness

/**
 * Alternating perforated and full-resolution forwards on the same
 * layer exercises the grow-only scratch pool: a perforated pass
 * shrinks the live prefix of the im2col buffer, the following full
 * pass must still be bitwise identical to a cold layer's output.
 */
TEST(Prepack, AlternatingPerforationKeepsFullPassBitwise)
{
    Rng rng_a(51);
    ConvLayer conv = makeConv(rng_a, 3, 6, 3, 1, 1, 8);
    Rng rng_b(51);
    ConvLayer cold = makeConv(rng_b, 3, 6, 3, 1, 1, 8);

    Tensor x(2, 3, 8, 8);
    Rng xr(52);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = float(xr.uniform(-1.0, 1.0));

    const Tensor want = cold.forward(x, false);
    for (int round = 0; round < 3; ++round) {
        conv.setComputedPositions(conv.fullPositions() / 4);
        (void)conv.forward(x, false);
        conv.setComputedPositions(0); // back to full
        Tensor full = conv.forward(x, false);
        ASSERT_EQ(full.size(), want.size());
        for (std::size_t i = 0; i < full.size(); ++i)
            EXPECT_EQ(want[i], full[i])
                << "round=" << round << " i=" << i;
    }
}

} // namespace
} // namespace pcnn
