/**
 * @file
 * Compiled-graph execution tests (DESIGN.md §5j).
 *
 * The contract under test has three legs:
 *
 *  1. Bitwise parity. The graph path invokes the same layer forwards
 *     in the same order on the same bytes as the legacy ping-pong
 *     chain, so logits must be bitwise identical for every model-zoo
 *     network, batch size, kernel tier (fp32 / forced int8 /
 *     perforated), and folding mode — at every PCNN_THREADS width
 *     (the .threads2 re-run covers that axis).
 *
 *  2. The static arena. One allocation per compiled graph, offsets
 *     respecting lifetimes, peak activation memory well below the
 *     legacy ping-pong + per-layer scratch sum, and zero allocator
 *     traffic in steady state.
 *
 *  3. Plan v4. A schedule round-trips through the plan file format,
 *     and hostile bytes — truncation, out-of-range offsets, edited
 *     lifetimes that alias live values, an undersized arena — are
 *     rejected by the hardened reader, never executed.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/alloc_count.hh"
#include "common/parallel.hh"
#include "common/random.hh"
#include "nn/fusion.hh"
#include "nn/graph/compiled_graph.hh"
#include "nn/graph/graph_ir.hh"
#include "nn/model_zoo.hh"
#include "nn/network.hh"
#include "pcnn/offline/compiler.hh"
#include "pcnn/offline/plan_io.hh"
#include "serve/engine.hh"

namespace pcnn {
namespace {

/** Restores every process-wide toggle a test flips. */
class ToggleGuard
{
  public:
    ~ToggleGuard()
    {
        setGraphEnabled(false);
        setReluFolding(true);
        clearQuantizeForced();
    }
};

bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(float)) == 0;
}

Network
zooNet(int which, unsigned seed)
{
    Rng rng(seed);
    switch (which) {
    case 0: return makeMiniVgg(rng);
    case 1: return makeMiniInception(rng);
    case 2: return makeMiniAlexNet(rng);
    default: return makeMiniNet(MiniSize::Medium, rng);
    }
}

constexpr int kZooCount = 4;

Tensor
zooInput(const Network &net, std::size_t n, unsigned seed)
{
    Rng rng(seed);
    Tensor x(Shape{n, net.inputShape().c, net.inputShape().h,
                   net.inputShape().w});
    x.fillUniform(rng, -1.0f, 1.0f);
    return x;
}

/** Legacy logits vs. graph logits on the same network and input. */
void
expectGraphParity(Network &net, const Tensor &x)
{
    setGraphEnabled(false);
    Tensor legacy;
    net.forwardInto(x, false, legacy);
    setGraphEnabled(true);
    Tensor graph;
    net.forwardInto(x, false, graph);
    setGraphEnabled(false);
    EXPECT_TRUE(bitwiseEqual(legacy, graph))
        << net.name() << " n=" << x.shape().n
        << ": graph logits diverge from the legacy chain";
}

// ------------------------------------------------- bitwise parity

TEST(GraphParity, MatchesLegacyAcrossZooAndBatches)
{
    ToggleGuard guard;
    for (int z = 0; z < kZooCount; ++z) {
        Network net = zooNet(z, 11u + unsigned(z));
        for (std::size_t n : {std::size_t(1), std::size_t(3),
                              std::size_t(16)}) {
            const Tensor x = zooInput(net, n, 77u + unsigned(n));
            expectGraphParity(net, x);
        }
    }
}

TEST(GraphParity, MatchesLegacyWithFoldingDisabled)
{
    ToggleGuard guard;
    setReluFolding(false);
    for (int z = 0; z < kZooCount; ++z) {
        Network net = zooNet(z, 23u + unsigned(z));
        const Tensor x = zooInput(net, 5, 31u);
        expectGraphParity(net, x);
    }
}

TEST(GraphParity, MatchesLegacyUnderForcedInt8)
{
    ToggleGuard guard;
    setQuantizeForced(true);
    for (int z = 0; z < kZooCount; ++z) {
        Network net = zooNet(z, 41u + unsigned(z));
        const Tensor x = zooInput(net, 4, 43u);
        // Dynamic activation-quant params are batch-coupled, so the
        // compiler must fall back to batch-wide execution.
        expectGraphParity(net, x);
        ASSERT_NE(net.compiledGraph(), nullptr);
        EXPECT_EQ(net.compiledGraph()->schedule().tiledOps, 0u)
            << net.name() << ": int8 schedules must not item-tile";
    }
}

TEST(GraphParity, MatchesLegacyUnderPerforation)
{
    ToggleGuard guard;
    Network net = zooNet(0, 53u); // MiniVgg: conv-heavy
    for (ConvLayer *c : net.convLayers())
        c->setComputedPositions((c->fullPositions() + 1) / 2);
    const Tensor x = zooInput(net, 6, 59u);
    expectGraphParity(net, x);
}

TEST(GraphParity, ToggleFlipsRecompileNotCorrupt)
{
    // Flipping fold/quant toggles between graph runs must recompile
    // (stale fingerprint) and keep matching the legacy chain.
    ToggleGuard guard;
    Network net = zooNet(1, 61u); // MiniInception
    const Tensor x = zooInput(net, 4, 67u);
    expectGraphParity(net, x);
    const std::size_t compiles = net.graphCompileCount();
    setReluFolding(false);
    expectGraphParity(net, x);
    EXPECT_GT(net.graphCompileCount(), compiles);
    setReluFolding(true);
    setQuantizeForced(true);
    expectGraphParity(net, x);
    clearQuantizeForced();
    expectGraphParity(net, x);
}

TEST(GraphParity, RepeatRunsAreDeterministic)
{
    ToggleGuard guard;
    setGraphEnabled(true);
    Network net = zooNet(2, 71u);
    const Tensor x = zooInput(net, 8, 73u);
    Tensor a, b;
    net.forwardInto(x, false, a);
    net.forwardInto(x, false, b);
    EXPECT_TRUE(bitwiseEqual(a, b));
    EXPECT_EQ(net.graphCompileCount(), 1u);
}

// ------------------------------------------------- pass pipeline

TEST(GraphPasses, NamesInExecutionOrder)
{
    const std::vector<std::string> expected{
        "prune-dropout", "fuse-relu", "concat-elim", "dce"};
    EXPECT_EQ(graphPassNames(), expected);
}

TEST(GraphPasses, DropoutIsPruned)
{
    // MiniAlexNet carries dropout layers; inference dropout is an
    // identity copy, so no schedule op may reference one.
    Network net = zooNet(2, 79u);
    const GraphSchedule s = buildGraphSchedule(net, 4);
    for (const GraphOp &op : s.ops)
        EXPECT_NE(op.layerKind, "dropout");
    EXPECT_TRUE(validateGraphSchedule(s));
}

TEST(GraphPasses, FusedReluOpsAppearWhenFoldingOn)
{
    ToggleGuard guard;
    Network net = zooNet(0, 83u); // MiniVgg: conv+relu chains
    setReluFolding(true);
    const GraphSchedule fused = buildGraphSchedule(net, 4);
    setReluFolding(false);
    const GraphSchedule plain = buildGraphSchedule(net, 4);
    std::size_t fusedOps = 0;
    for (const GraphOp &op : fused.ops)
        fusedOps += op.exec == GraphOpExec::LayerFusedRelu ? 1 : 0;
    EXPECT_GT(fusedOps, 0u);
    EXPECT_LT(fused.ops.size(), plain.ops.size());
}

TEST(GraphPasses, InceptionConcatStagingIsEliminatedWhenTiled)
{
    Network net = zooNet(1, 89u); // MiniInception
    const GraphSchedule s = buildGraphSchedule(net, 16);
    EXPECT_GT(s.tiledOps, 0u);
    for (const GraphOp &op : s.ops)
        EXPECT_NE(int(op.exec), int(GraphOpExec::CopyWindow))
            << "tiled inception branches must write their concat "
               "windows directly";
}

// ------------------------------------------------- the arena plan

TEST(GraphArena, PeakMemoryDropsAtLeast30Percent)
{
    // The acceptance criterion: peak steady activation memory on
    // MiniVgg and MiniInception at batch 16 drops >= 30% vs. the
    // legacy ping-pong chain + per-layer scratch. Fresh networks per
    // path so neither measurement carries the other's buffers.
    ToggleGuard guard;
    for (int z : {0, 1}) {
        Network legacy = zooNet(z, 97u + unsigned(z));
        Network graph = zooNet(z, 97u + unsigned(z));
        const Tensor x = zooInput(legacy, 16, 101u);
        Tensor out;
        setGraphEnabled(false);
        legacy.forwardInto(x, false, out);
        legacy.forwardInto(x, false, out);
        const std::size_t legacyBytes = legacy.steadyMemoryBytes();
        setGraphEnabled(true);
        graph.forwardInto(x, false, out);
        graph.forwardInto(x, false, out);
        const std::size_t graphBytes = graph.steadyMemoryBytes();
        setGraphEnabled(false);
        EXPECT_LE(double(graphBytes), 0.70 * double(legacyBytes))
            << legacy.name() << ": arena " << graphBytes
            << " bytes vs legacy " << legacyBytes;
    }
}

TEST(GraphArena, ScheduleSurvivesValidation)
{
    for (int z = 0; z < kZooCount; ++z) {
        Network net = zooNet(z, 103u + unsigned(z));
        for (std::size_t b : {std::size_t(1), std::size_t(16)}) {
            const GraphSchedule s = buildGraphSchedule(net, b);
            EXPECT_TRUE(validateGraphSchedule(s))
                << net.name() << " b=" << b;
            EXPECT_EQ(s.batch, b);
            EXPECT_GT(s.arenaFloats, 0u);
        }
    }
}

TEST(GraphArena, SteadyStateRunsAreAllocationFree)
{
    if (!allocCountingEnabled())
        GTEST_SKIP() << "PCNN_COUNT_ALLOCS disabled in this build";
    ToggleGuard guard;
    setGraphEnabled(true);
    for (int z = 0; z < kZooCount; ++z) {
        Network net = zooNet(z, 107u + unsigned(z));
        const Tensor x16 = zooInput(net, 16, 109u);
        const Tensor x1 = zooInput(net, 1, 113u);
        Tensor out16, out1;
        net.forwardInto(x16, false, out16);
        net.forwardInto(x16, false, out16);
        net.forwardInto(x1, false, out1);
        {
            ScopedAllocCount probe;
            net.forwardInto(x16, false, out16);
            EXPECT_EQ(probe.allocs(), 0u)
                << net.name() << " batch 16 steady state";
        }
        {
            ScopedAllocCount probe;
            net.forwardInto(x1, false, out1);
            EXPECT_EQ(probe.allocs(), 0u)
                << net.name() << " batch 1 steady state";
        }
        EXPECT_EQ(net.graphCompileCount(), 1u) << net.name();
    }
}

// ------------------------------------------------- plan format v4

/** A v4 plan for MiniVgg with an attached schedule + the network. */
struct PlanFixture
{
    Network net;
    CompiledPlan plan;

    explicit PlanFixture(std::size_t batch = 4)
        : net(zooNet(0, 127u))
    {
        const OfflineCompiler compiler(jetsonTx1());
        plan = compiler.compileAtBatch(describe(net), batch);
        attachGraphSchedule(plan, net);
    }
};

TEST(GraphPlanV4, RoundTripPreservesSchedule)
{
    PlanFixture fx;
    ASSERT_TRUE(fx.plan.schedule.has_value());
    const auto bytes = serializePlan(fx.plan);
    ASSERT_GE(bytes.size(), 9u);
    EXPECT_EQ(bytes[8], 4u); // v4 discriminated by the version byte

    const auto loaded = deserializePlan(bytes);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_TRUE(loaded->schedule.has_value());
    const GraphSchedule &a = *fx.plan.schedule;
    const GraphSchedule &b = *loaded->schedule;
    EXPECT_EQ(a.batch, b.batch);
    EXPECT_EQ(a.arenaFloats, b.arenaFloats);
    EXPECT_EQ(a.tiledOps, b.tiledOps);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    ASSERT_EQ(a.values.size(), b.values.size());
    for (std::size_t i = 0; i < a.ops.size(); ++i) {
        EXPECT_EQ(int(a.ops[i].exec), int(b.ops[i].exec));
        EXPECT_EQ(a.ops[i].layer, b.ops[i].layer);
        EXPECT_EQ(a.ops[i].input, b.ops[i].input);
        EXPECT_EQ(a.ops[i].output, b.ops[i].output);
        EXPECT_EQ(a.ops[i].chanOff, b.ops[i].chanOff);
        EXPECT_EQ(a.ops[i].chanCount, b.ops[i].chanCount);
        EXPECT_EQ(a.ops[i].tiled, b.ops[i].tiled);
        EXPECT_EQ(a.ops[i].layerKind, b.ops[i].layerKind);
        EXPECT_EQ(a.ops[i].layerName, b.ops[i].layerName);
    }
    for (std::size_t i = 0; i < a.values.size(); ++i) {
        EXPECT_EQ(a.values[i].offset, b.values[i].offset);
        EXPECT_EQ(a.values[i].extent, b.values[i].extent);
        EXPECT_EQ(a.values[i].def, b.values[i].def);
        EXPECT_EQ(a.values[i].lastUse, b.values[i].lastUse);
    }
}

TEST(GraphPlanV4, AdoptedScheduleMatchesLegacyBitwise)
{
    ToggleGuard guard;
    PlanFixture fx;
    const auto bytes = serializePlan(fx.plan);
    const auto loaded = deserializePlan(bytes);
    ASSERT_TRUE(loaded.has_value() && loaded->schedule.has_value());

    // attachGraphSchedule pinned fx.net to the plan's tier choices;
    // the adopted schedule must reproduce the pinned legacy chain.
    fx.net.adoptGraphSchedule(*loaded->schedule);
    const Tensor x = zooInput(fx.net, fx.plan.batch, 131u);
    setGraphEnabled(false);
    Tensor legacy;
    fx.net.forwardInto(x, false, legacy);
    setGraphEnabled(true);
    Tensor graph;
    fx.net.forwardInto(x, false, graph);
    setGraphEnabled(false);
    EXPECT_TRUE(bitwiseEqual(legacy, graph));
    // Adoption counts as the one compile; running must not add more.
    EXPECT_EQ(fx.net.graphCompileCount(), 1u);
}

TEST(GraphPlanV4, OlderVersionsStillLoadWithoutSchedule)
{
    PlanFixture fx;
    for (std::uint8_t v : {std::uint8_t(2), std::uint8_t(3)}) {
        const auto bytes = serializePlan(fx.plan, v);
        const auto loaded = deserializePlan(bytes);
        ASSERT_TRUE(loaded.has_value()) << "version " << int(v);
        EXPECT_FALSE(loaded->schedule.has_value());
    }
}

TEST(GraphPlanV4, V4WithoutScheduleLoads)
{
    PlanFixture fx;
    fx.plan.schedule.reset();
    const auto loaded = deserializePlan(serializePlan(fx.plan));
    ASSERT_TRUE(loaded.has_value());
    EXPECT_FALSE(loaded->schedule.has_value());
}

TEST(GraphPlanV4, TruncatedScheduleIsRejected)
{
    PlanFixture fx;
    const auto bytes = serializePlan(fx.plan);
    // Chop anywhere inside the schedule section: every prefix must
    // come back nullopt, never crash or half-parse.
    const auto noSched = serializePlan(fx.plan, 3);
    for (std::size_t cut = noSched.size() + 1; cut < bytes.size();
         cut += 7) {
        const std::vector<std::uint8_t> trunc(bytes.begin(),
                                              bytes.begin() +
                                                  std::ptrdiff_t(cut));
        EXPECT_FALSE(deserializePlan(trunc).has_value())
            << "cut at " << cut << " of " << bytes.size();
    }
}

TEST(GraphPlanV4, OutOfRangeArenaOffsetIsRejected)
{
    PlanFixture fx;
    GraphSchedule s = *fx.plan.schedule;
    // Push one non-output value past the end of the arena.
    for (GraphValue &v : s.values)
        if (!v.isOutput) {
            v.offset = s.arenaFloats;
            break;
        }
    fx.plan.schedule = s;
    EXPECT_FALSE(deserializePlan(serializePlan(fx.plan)).has_value());
}

TEST(GraphPlanV4, UndersizedArenaIsRejected)
{
    PlanFixture fx;
    GraphSchedule s = *fx.plan.schedule;
    ASSERT_GT(s.arenaFloats, 1u);
    s.arenaFloats -= 1; // smaller than the max offset + extent
    fx.plan.schedule = s;
    EXPECT_FALSE(deserializePlan(serializePlan(fx.plan)).has_value());
}

TEST(GraphPlanV4, EditedLifetimesAreRejected)
{
    // Shortening a lifetime is the classic aliasing attack: two
    // simultaneously-live values end up sharing bytes. The reader
    // recomputes lifetimes from the op list and must refuse the
    // mismatch.
    PlanFixture fx;
    GraphSchedule s = *fx.plan.schedule;
    for (GraphValue &v : s.values)
        if (!v.isOutput && v.lastUse > v.def) {
            v.lastUse = v.def;
            break;
        }
    fx.plan.schedule = s;
    EXPECT_FALSE(deserializePlan(serializePlan(fx.plan)).has_value());
}

TEST(GraphPlanV4, OverlappingLiveValuesAreRejected)
{
    // Same bytes for two values whose recomputed lifetimes overlap
    // (a producer and its consumer are always simultaneously live).
    PlanFixture fx;
    GraphSchedule s = *fx.plan.schedule;
    int first = -1;
    bool tampered = false;
    for (std::size_t v = 0; v < s.values.size() && !tampered; ++v) {
        if (s.values[v].isOutput)
            continue;
        if (first < 0) {
            first = int(v);
            continue;
        }
        const GraphValue &a = s.values[std::size_t(first)];
        GraphValue &b = s.values[v];
        if (a.def <= b.lastUse && b.def <= a.lastUse) {
            b.offset = a.offset; // force address overlap
            tampered = true;
        }
    }
    ASSERT_TRUE(tampered);
    fx.plan.schedule = s;
    EXPECT_FALSE(deserializePlan(serializePlan(fx.plan)).has_value());
}

TEST(GraphPlanV4, ScheduleBatchMismatchIsRejected)
{
    PlanFixture fx;
    GraphSchedule s = *fx.plan.schedule;
    fx.plan.batch += 1; // splice: plan header batch != schedule batch
    fx.plan.schedule = s;
    EXPECT_FALSE(deserializePlan(serializePlan(fx.plan)).has_value());
}

// ------------------------------------------------- serving

TEST(GraphServe, OneArenaPerReplicaAndBitwiseResults)
{
    ToggleGuard guard;
    Network proto = zooNet(1, 137u); // MiniInception
    const Tensor probe = zooInput(proto, 1, 139u);
    setGraphEnabled(false);
    Tensor want;
    proto.forwardInto(probe, false, want);

    setGraphEnabled(true);
    EngineConfig cfg;
    cfg.workers = 2;
    cfg.maxBatch = 4;
    ServeEngine engine(proto, cfg);
    for (std::size_t w = 0; w < engine.workerCount(); ++w) {
        // Exactly one compile — one arena allocation — per replica,
        // taken in the constructor at the batch ceiling.
        EXPECT_EQ(engine.replicaGraphCompiles(w), 1u) << "worker " << w;
        EXPECT_GT(engine.replicaArenaBytes(w), 0u) << "worker " << w;
    }

    std::vector<std::future<ServeResult>> futs;
    for (int i = 0; i < 12; ++i) {
        auto sub = engine.submit(probe);
        ASSERT_EQ(sub.status, SubmitStatus::Accepted);
        futs.push_back(std::move(sub.result));
    }
    for (auto &f : futs) {
        const ServeResult r = f.get();
        EXPECT_TRUE(bitwiseEqual(r.logits, want))
            << "served logits diverge from the prototype's";
    }
    engine.stop();
    for (std::size_t w = 0; w < engine.workerCount(); ++w)
        EXPECT_EQ(engine.replicaGraphCompiles(w), 1u)
            << "worker " << w << " recompiled while serving";
}

} // namespace
} // namespace pcnn
