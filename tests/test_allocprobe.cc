/**
 * @file
 * Runtime allocation-zero probe (DESIGN.md §5h).
 *
 * tools/pcnn_analyze proves statically that PCNN_HOT_PATH functions
 * never reach an allocating primitive; these tests are the runtime
 * cross-check. With the PCNN_COUNT_ALLOCS build (the default dev
 * preset) the global operator new/delete family counts per-thread
 * allocator traffic, and a warmed-up forward — every scratch buffer
 * and weight panel already grown — must report exactly zero
 * allocations on the dispatching thread, at every pool width.
 *
 * Under the sanitizer presets counting is compiled out (ASan/TSan
 * own operator new); the probes skip themselves there.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <vector>

#include "common/alloc_count.hh"
#include "common/parallel.hh"
#include "common/random.hh"
#include "nn/model_zoo.hh"
#include "nn/network.hh"
#include "serve/engine.hh"

namespace pcnn {
namespace {

/** Restores the ambient pool width when a test resizes it. */
class ThreadCountGuard
{
  public:
    ThreadCountGuard() : saved(threadCount()) {}
    ~ThreadCountGuard() { setThreadCount(saved); }

  private:
    std::size_t saved;
};

TEST(AllocProbe, CountersObserveAllocatorTraffic)
{
    if (!allocCountingEnabled())
        GTEST_SKIP() << "PCNN_COUNT_ALLOCS disabled in this build";
    ScopedAllocCount probe;
    {
        std::vector<int> v(1024, 7);
        ASSERT_EQ(v[0], 7);
    }
    EXPECT_GE(probe.allocs(), 1u);
    EXPECT_GE(probe.frees(), 1u);
}

/**
 * Warmed forward over a fixed batch: zero allocations on the calling
 * thread, for each of the three model-zoo nets, at pool widths
 * 1/2/4. The lane workers' own thread-local scratch grows during
 * warm-up and is invisible afterwards either way.
 */
TEST(AllocProbe, WarmForwardIsAllocFree)
{
    if (!allocCountingEnabled())
        GTEST_SKIP() << "PCNN_COUNT_ALLOCS disabled in this build";

    ThreadCountGuard guard;
    for (std::size_t threads : {std::size_t(1), std::size_t(2),
                                std::size_t(4)}) {
        setThreadCount(threads);
        for (int zoo = 0; zoo < 3; ++zoo) {
            Rng rng(42);
            Network net = zoo == 0   ? makeMiniAlexNet(rng)
                          : zoo == 1 ? makeMiniVgg(rng)
                                     : makeMiniInception(rng);
            const Shape &in = net.inputShape();
            Tensor x(Shape{4, in.c, in.h, in.w});
            x.fillGaussian(rng, 0, 1);

            // Warm-up: grows activations, scratch, weight panels,
            // and (on the first parallel call at this width) the
            // pool's worker threads.
            Tensor y;
            net.forwardInto(x, false, y);
            net.forwardInto(x, false, y);

            ScopedAllocCount probe;
            net.forwardInto(x, false, y);
            EXPECT_EQ(probe.allocs(), 0u)
                << "zoo " << zoo << " threads " << threads;
            EXPECT_EQ(probe.frees(), 0u)
                << "zoo " << zoo << " threads " << threads;
        }
    }
}

/**
 * A batch smaller than the warmed envelope must also be alloc-free:
 * every buffer on the path is grow-only, so shrinking the logical
 * shape reuses capacity.
 */
TEST(AllocProbe, SmallerBatchReusesCapacity)
{
    if (!allocCountingEnabled())
        GTEST_SKIP() << "PCNN_COUNT_ALLOCS disabled in this build";

    Rng rng(7);
    Network net = makeMiniAlexNet(rng);
    const Shape &in = net.inputShape();
    Tensor big(Shape{8, in.c, in.h, in.w});
    big.fillGaussian(rng, 0, 1);
    Tensor small(Shape{2, in.c, in.h, in.w});
    small.fillGaussian(rng, 0, 1);

    Tensor y;
    net.forwardInto(big, false, y);

    ScopedAllocCount probe;
    net.forwardInto(small, false, y);
    EXPECT_EQ(probe.allocs(), 0u);
}

/**
 * End-to-end: the serving engine's own steady-state probe (worker
 * batches whose size was already served) must report zero
 * allocations in the metrics snapshot.
 */
TEST(AllocProbe, ServingEngineSteadyStateIsAllocFree)
{
    if (!allocCountingEnabled())
        GTEST_SKIP() << "PCNN_COUNT_ALLOCS disabled in this build";

    Rng rng(42);
    Network net = makeMiniAlexNet(rng);
    EngineConfig cfg;
    cfg.workers = 1;
    cfg.maxBatch = 1;
    cfg.queueCapacity = 64;
    cfg.maxWaitS = 0.0;
    ServeEngine engine(net, cfg);

    const Shape &in = net.inputShape();
    Rng inputs(9);
    std::vector<std::future<ServeResult>> futs;
    for (int i = 0; i < 24; ++i) {
        Tensor t(Shape{1, in.c, in.h, in.w});
        t.fillUniform(inputs, -1.0f, 1.0f);
        auto sub = engine.submit(std::move(t));
        ASSERT_EQ(sub.status, SubmitStatus::Accepted);
        futs.push_back(std::move(sub.result));
    }
    for (auto &f : futs)
        f.get();

    const ServeMetricsSnapshot m = engine.metrics();
    engine.stop();
    // 24 batch-1 requests on one worker: at most the first batch is
    // outside the steady envelope.
    EXPECT_GE(m.steadyProbedBatches, 20u);
    EXPECT_EQ(m.steadyAllocs, 0u);
}

} // namespace
} // namespace pcnn
