/**
 * @file
 * Unit tests for the runtime phase: tuning tables, the entropy
 * profile, the greedy accuracy tuner (Fig. 12), the runtime kernel
 * scheduler, calibration, and the executor.
 */

#include <gtest/gtest.h>

#include "data/synthetic.hh"
#include "nn/model_zoo.hh"
#include "pcnn/runtime/accuracy_tuner.hh"
#include "pcnn/runtime/calibration.hh"
#include "pcnn/runtime/executor.hh"
#include "pcnn/runtime/kernel_scheduler.hh"
#include "train/trainer.hh"

namespace pcnn {
namespace {

// ------------------------------------------------------- TuningTable

TuningEntry
entry(double time_s, double entropy, double speedup)
{
    TuningEntry e;
    e.positions = {100, 100};
    e.predictedTimeS = time_s;
    e.entropy = entropy;
    e.speedup = speedup;
    return e;
}

TEST(TuningTable, SelectsFastestWithinThreshold)
{
    TuningTable t;
    t.push(entry(1.0, 0.4, 1.0));
    t.push(entry(0.8, 0.6, 1.25));
    t.push(entry(0.6, 0.9, 1.67));
    t.push(entry(0.4, 1.5, 2.5));
    EXPECT_EQ(t.selectLevel(1.0), 2u);
    EXPECT_EQ(t.selectLevel(0.5), 0u);
    EXPECT_EQ(t.selectLevel(2.0), 3u);
    EXPECT_NEAR(t.bestSpeedup(1.0), 1.67, 1e-9);
}

TEST(TuningTable, Level0WhenEverythingViolates)
{
    TuningTable t;
    t.push(entry(1.0, 2.0, 1.0));
    t.push(entry(0.5, 3.0, 2.0));
    EXPECT_EQ(t.selectLevel(1.0), 0u);
}

// ---------------------------------------------------- EntropyProfile

TEST(EntropyProfile, RepresentativeMonotonic)
{
    const EntropyProfile p = EntropyProfile::representative();
    // Entropy rises and accuracy falls as keep shrinks.
    EXPECT_LT(p.entropyAt(1.0), p.entropyAt(0.5));
    EXPECT_LT(p.entropyAt(0.5), p.entropyAt(0.15));
    EXPECT_GT(p.accuracyAt(1.0), p.accuracyAt(0.3));
}

TEST(EntropyProfile, InterpolatesAndClamps)
{
    const EntropyProfile p({{0.5, 1.0, 0.8}, {1.0, 0.5, 0.9}});
    EXPECT_NEAR(p.entropyAt(0.75), 0.75, 1e-9);
    EXPECT_NEAR(p.entropyAt(0.1), 1.0, 1e-9);  // clamped low
    EXPECT_NEAR(p.entropyAt(2.0), 0.5, 1e-9);  // clamped high
    EXPECT_NEAR(p.accuracyAt(0.75), 0.85, 1e-9);
}

TEST(EntropyProfile, CalibrationOnTrainedNet)
{
    SyntheticTaskConfig cfg;
    cfg.difficulty = 0.4;
    cfg.seed = 60;
    SyntheticTask task(cfg);
    Dataset train_set = task.generate(768);
    Dataset test_set = task.generate(192);
    Rng rng(61);
    Network net = makeMiniNet(MiniSize::Medium, rng);
    TrainConfig tc;
    tc.epochs = 4;
    Trainer trainer(net, tc);
    trainer.fit(train_set);

    const EntropyProfile prof =
        EntropyProfile::calibrate(net, test_set, 6);
    ASSERT_GE(prof.points().size(), 6u);
    // Exact network beats heavily perforated network.
    EXPECT_GT(prof.accuracyAt(1.0), prof.accuracyAt(0.2));
    EXPECT_LT(prof.entropyAt(1.0), prof.entropyAt(0.2) + 1e-9);
    // Perforation left disabled afterwards.
    for (ConvLayer *c : net.convLayers())
        EXPECT_FALSE(c->perforated());
}

// ----------------------------------------------------- AccuracyTuner

class TunerFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SyntheticTaskConfig cfg;
        cfg.difficulty = 0.4;
        cfg.seed = 70;
        task.emplace(cfg);
        Dataset train_set = task->generate(768);
        rng.emplace(71);
        net.emplace(makeMiniNet(MiniSize::Medium, *rng));
        TrainConfig tc;
        tc.epochs = 4;
        Trainer trainer(*net, tc);
        trainer.fit(train_set);

        // Batch 64: the conv kernels dominate the latency, so
        // perforation has a measurable effect on predicted time (at
        // batch 1 a toy network is pure launch overhead).
        const OfflineCompiler compiler(jetsonTx1());
        plan = compiler.compileAtBatch(describe(*net), 64);
    }

    std::optional<SyntheticTask> task;
    std::optional<Rng> rng;
    std::optional<Network> net;
    CompiledPlan plan;
};

TEST_F(TunerFixture, EntropyGuidedPathIsMonotonicInTime)
{
    TunerConfig cfg;
    cfg.entropyThreshold = 1.4;
    const AccuracyTuner tuner(jetsonTx1(), cfg);
    const Dataset tune_data = task->generate(128);
    const TuningTable table = tuner.tuneNetwork(
        *net, plan, tune_data.batch(0, tune_data.size()));

    ASSERT_GE(table.levels(), 2u) << "tuner never moved";
    for (std::size_t i = 1; i < table.levels(); ++i) {
        EXPECT_LT(table.entry(i).predictedTimeS,
                  table.entry(i - 1).predictedTimeS)
            << "level " << i;
        EXPECT_GE(table.entry(i).speedup, 1.0);
        EXPECT_GE(table.entry(i).adjustedLayer, 0);
    }
    // Speedup consistent with predicted times.
    const TuningEntry &last = table.entry(table.levels() - 1);
    EXPECT_NEAR(last.speedup,
                table.entry(0).predictedTimeS / last.predictedTimeS,
                1e-9);
}

TEST_F(TunerFixture, StopsOnceThresholdExceeded)
{
    TunerConfig cfg;
    cfg.entropyThreshold = 0.9;
    cfg.maxIterations = 30;
    const AccuracyTuner tuner(jetsonTx1(), cfg);
    const Dataset tune_data = task->generate(128);
    const TuningTable table = tuner.tuneNetwork(
        *net, plan, tune_data.batch(0, tune_data.size()));

    // Only the final level may exceed the threshold.
    for (std::size_t i = 0; i + 1 < table.levels(); ++i)
        EXPECT_LE(table.entry(i).entropy, cfg.entropyThreshold);
}

TEST_F(TunerFixture, AccuracyGuidedComparatorRuns)
{
    TunerConfig cfg;
    cfg.maxAccuracyDrop = 0.10;
    const AccuracyTuner tuner(jetsonTx1(), cfg);
    const Dataset labeled = task->generate(192);
    const TuningTable table =
        tuner.tuneNetworkByAccuracy(*net, plan, labeled);
    ASSERT_GE(table.levels(), 2u);
    // All but the last level stay within the accuracy budget.
    const double acc0 = table.entry(0).accuracy;
    for (std::size_t i = 0; i + 1 < table.levels(); ++i)
        EXPECT_GE(table.entry(i).accuracy, acc0 - cfg.maxAccuracyDrop);
}

TEST(AccuracyTunerModeled, ProducesPathOnAlexNet)
{
    const OfflineCompiler compiler(jetsonTx1());
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    TunerConfig cfg;
    cfg.entropyThreshold = 1.2;
    const AccuracyTuner tuner(jetsonTx1(), cfg);
    const TuningTable table =
        tuner.tuneModeled(plan, EntropyProfile::representative());
    ASSERT_GE(table.levels(), 3u);
    const std::size_t sel = table.selectLevel(1.2);
    EXPECT_GT(sel, 0u) << "tuning found no acceptable speedup";
    EXPECT_GT(table.entry(sel).speedup, 1.2);
}

// ---------------------------------------------- RuntimeKernelScheduler

TEST(RuntimeKernelScheduler, PcnnPolicySavesEnergy)
{
    const OfflineCompiler compiler(k20c());
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    const RuntimeKernelScheduler rt(k20c());
    const SimResult base = rt.execute(plan, baselinePolicy());
    const SimResult opt = rt.execute(plan, pcnnPolicy());
    // Power gating idle SMs on underutilized layers saves energy...
    EXPECT_LT(opt.energy.total(), base.energy.total());
    // ...without a catastrophic time cost.
    EXPECT_LT(opt.timeS, base.timeS * 2.0);
}

TEST(RuntimeKernelScheduler, PerforationShortensExecution)
{
    const OfflineCompiler compiler(jetsonTx1());
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    const RuntimeKernelScheduler rt(jetsonTx1());
    std::vector<std::size_t> half;
    for (const LayerSchedule &ls : plan.layers)
        half.push_back(
            std::max<std::size_t>(1, ls.layer.outH() *
                                         ls.layer.outW() / 2));
    const SimResult full = rt.execute(plan, pcnnPolicy());
    const SimResult perf = rt.execute(plan, pcnnPolicy(), &half);
    EXPECT_LT(perf.timeS, full.timeS);
    EXPECT_LT(perf.energy.total(), full.energy.total());
}

// -------------------------------------------------------- Calibrator

TEST(Calibrator, StartsAtSelectedLevel)
{
    TuningTable t;
    t.push(entry(1.0, 0.4, 1.0));
    t.push(entry(0.7, 0.8, 1.4));
    t.push(entry(0.5, 1.5, 2.0));
    Calibrator cal(t, 1.0);
    EXPECT_EQ(cal.currentLevel(), 1u);
}

TEST(Calibrator, BacktracksOnViolation)
{
    TuningTable t;
    t.push(entry(1.0, 0.4, 1.0));
    t.push(entry(0.7, 0.8, 1.4));
    Calibrator cal(t, 1.0);
    ASSERT_EQ(cal.currentLevel(), 1u);
    EXPECT_TRUE(cal.observe(1.3)); // live data harder than tuning data
    EXPECT_EQ(cal.currentLevel(), 0u);
    EXPECT_EQ(cal.backtracks(), 1u);
    // At level 0 there is nowhere left to go.
    EXPECT_FALSE(cal.observe(2.0));
}

TEST(Calibrator, NoChangeWhenWithinThreshold)
{
    TuningTable t;
    t.push(entry(1.0, 0.4, 1.0));
    t.push(entry(0.7, 0.8, 1.4));
    Calibrator cal(t, 1.0);
    EXPECT_FALSE(cal.observe(0.9));
    EXPECT_EQ(cal.currentLevel(), 1u);
}

// ---------------------------------------------------------- Executor

TEST(ExecutorTest, EndToEndInferenceWithTuning)
{
    SyntheticTaskConfig cfg;
    cfg.difficulty = 0.4;
    cfg.seed = 80;
    SyntheticTask task(cfg);
    Dataset train_set = task.generate(768);
    Rng rng(81);
    Network net = makeMiniNet(MiniSize::Medium, rng);
    TrainConfig tc;
    tc.epochs = 4;
    Trainer trainer(net, tc);
    trainer.fit(train_set);

    const GpuSpec gpu = jetsonTx1();
    const OfflineCompiler compiler(gpu);
    CompiledPlan plan = compiler.compileAtBatch(describe(net), 1);

    TunerConfig tcfg;
    tcfg.entropyThreshold = 1.3;
    Executor exec(net, plan, gpu, tcfg);

    // Before tuning: exact network.
    Dataset req = task.generate(16);
    const InferenceResult r0 = exec.infer(req.batch(0, 16));
    EXPECT_EQ(r0.tuningLevel, 0u);
    EXPECT_GT(r0.simLatencyS, 0.0);
    EXPECT_GT(r0.energyJ, 0.0);

    // Tune, then the selected level should be faster.
    Dataset tune_data = task.generate(128);
    exec.tune(tune_data.batch(0, 128));
    EXPECT_GE(exec.tuningTable().levels(), 2u);
    const InferenceResult r1 = exec.infer(req.batch(0, 16));
    EXPECT_LE(r1.simLatencyS, r0.simLatencyS + 1e-9);
    // Predictions remain sensible (accuracy of the batch not zero).
    std::size_t hits = 0;
    for (std::size_t i = 0; i < 16; ++i)
        hits += r1.predictions[i] == req.label(i);
    EXPECT_GT(hits, 4u);
}

} // namespace
} // namespace pcnn
