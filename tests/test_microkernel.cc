/**
 * @file
 * Micro-kernel tier dispatch and cache-blocked SGEMM contracts
 * (DESIGN.md §5g): per-tier bitwise determinism across thread counts,
 * cross-tier numerical agreement within explicit budgets, the
 * narrow-N portable fallback, blocking overrides, and the detection /
 * dispatch plumbing itself.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/parallel.hh"
#include "common/random.hh"
#include "tensor/microkernel.hh"
#include "tensor/tensor_ops.hh"
#include "tolerance.hh"

namespace pcnn {
namespace {

/** Restore tier, blocking, and thread count on scope exit. */
class DispatchStateGuard
{
  public:
    ~DispatchStateGuard()
    {
        resetKernelTier();
        resetBlocking();
        setThreadCount(0);
    }
};

std::vector<float>
randomVec(std::size_t n, Rng &rng, double lo = -1.0, double hi = 1.0)
{
    std::vector<float> v(n);
    for (float &x : v)
        x = float(rng.uniform(lo, hi));
    return v;
}

/** Run sgemm at the current tier/blocking with `threads` lanes. */
std::vector<float>
runSgemm(std::size_t m, std::size_t n, std::size_t k,
         const std::vector<float> &a, const std::vector<float> &b,
         std::size_t threads, const Epilogue &epi = {})
{
    setThreadCount(threads);
    std::vector<float> c(m * n, 0.0f);
    sgemm(false, false, m, n, k, a.data(), b.data(), c.data(), 0.0f,
          epi);
    return c;
}

/** Reference O(mnk) product with double accumulation. */
std::vector<float>
naiveGemm(std::size_t m, std::size_t n, std::size_t k,
          const std::vector<float> &a, const std::vector<float> &b)
{
    std::vector<float> c(m * n);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < k; ++p)
                acc += double(a[i * k + p]) * double(b[p * n + j]);
            c[i * n + j] = float(acc);
        }
    }
    return c;
}

// Odd in every dimension: remainders against every tier's mr/nr and
// against the small blocking below, so full tiles, edge tiles, and
// partial Kc chunks all execute.
constexpr std::size_t kM = 53, kN = 67, kK = 41;

// Small enough that the 53x67 problem spans several Kc chunks, Mc
// blocks, and Nc panels (the full hierarchy, not one block).
const GemmBlocking kTinyBlocking{16, 24, 32, 0};

TEST(Microkernel, SupportedTiersNeverEmptyPortableFirst)
{
    const std::vector<KernelTier> tiers = supportedKernelTiers();
    ASSERT_FALSE(tiers.empty());
    EXPECT_EQ(tiers.front(), KernelTier::Portable);
    for (KernelTier t : tiers)
        EXPECT_TRUE(kernelTierSupported(t));
    EXPECT_EQ(bestKernelTier(), tiers.back());
    EXPECT_TRUE(kernelTierSupported(activeKernelTier()));
}

TEST(Microkernel, TierNamesRoundTrip)
{
    for (KernelTier t :
         {KernelTier::Portable, KernelTier::Neon, KernelTier::Avx2,
          KernelTier::Avx512}) {
        KernelTier parsed;
        ASSERT_TRUE(parseKernelTier(kernelTierName(t), parsed));
        EXPECT_EQ(parsed, t);
    }
    KernelTier t;
    EXPECT_FALSE(parseKernelTier("", t));
    EXPECT_FALSE(parseKernelTier("auto", t));
    EXPECT_FALSE(parseKernelTier("AVX2 ", t));
}

TEST(Microkernel, MicroKernelShapesWithinEdgeScratchBound)
{
    for (KernelTier t : supportedKernelTiers()) {
        const MicroKernel &mk = microKernelFor(t);
        EXPECT_EQ(mk.tier, t);
        EXPECT_GE(mk.mr, 1u);
        EXPECT_GE(mk.nr, 1u);
        EXPECT_LE(mk.mr, kMaxMicroMR);
        EXPECT_LE(mk.nr, kMaxMicroNR);
        EXPECT_NE(mk.full, nullptr);
    }
}

TEST(Microkernel, DefaultBlockingAlignedAndNonzero)
{
    for (KernelTier t : supportedKernelTiers()) {
        const MicroKernel &mk = microKernelFor(t);
        const GemmBlocking blk = defaultBlocking(t);
        EXPECT_GE(blk.kc, 1u);
        EXPECT_GE(blk.mc, mk.mr);
        EXPECT_GE(blk.nc, mk.nr);
        EXPECT_EQ(blk.mc % mk.mr, 0u);
        EXPECT_EQ(blk.nc % mk.nr, 0u);
    }
}

// The load-bearing contract: at a fixed tier and blocking, results
// are bitwise identical for every thread count, with odd M/N/K
// remainders in play.
TEST(Microkernel, EveryTierBitwiseAcrossThreadCounts)
{
    DispatchStateGuard guard;
    Rng rng(7);
    const auto a = randomVec(kM * kK, rng);
    const auto b = randomVec(kK * kN, rng);
    for (KernelTier tier : supportedKernelTiers()) {
        SCOPED_TRACE(kernelTierName(tier));
        setKernelTier(tier);
        setBlocking(kTinyBlocking);
        const auto c1 = runSgemm(kM, kN, kK, a, b, 1);
        const auto c2 = runSgemm(kM, kN, kK, a, b, 2);
        const auto c4 = runSgemm(kM, kN, kK, a, b, 4);
        EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(),
                                 c1.size() * sizeof(float)));
        EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(),
                                 c1.size() * sizeof(float)));
    }
}

// Same contract with the fused bias+ReLU epilogue in the store pass.
TEST(Microkernel, EveryTierBitwiseAcrossThreadsWithEpilogue)
{
    DispatchStateGuard guard;
    Rng rng(11);
    const auto a = randomVec(kM * kK, rng);
    const auto b = randomVec(kK * kN, rng);
    const auto bias = randomVec(kM, rng);
    Epilogue epi;
    epi.op = EpilogueOp::BiasRelu;
    epi.bias = bias.data();
    for (KernelTier tier : supportedKernelTiers()) {
        SCOPED_TRACE(kernelTierName(tier));
        setKernelTier(tier);
        setBlocking(kTinyBlocking);
        const auto c1 = runSgemm(kM, kN, kK, a, b, 1, epi);
        const auto c4 = runSgemm(kM, kN, kK, a, b, 4, epi);
        EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(),
                                 c1.size() * sizeof(float)));
    }
}

// Every tier is *correct* against an O(mnk) double-accumulated
// reference, under a deliberately weird (unaligned to any tier)
// blocking override.
TEST(Microkernel, EveryTierMatchesNaiveReference)
{
    DispatchStateGuard guard;
    Rng rng(13);
    const auto a = randomVec(kM * kK, rng);
    const auto b = randomVec(kK * kN, rng);
    const auto want = naiveGemm(kM, kN, kK, a, b);
    for (KernelTier tier : supportedKernelTiers()) {
        SCOPED_TRACE(kernelTierName(tier));
        setKernelTier(tier);
        setBlocking(GemmBlocking{13, 19, 23, 3});
        const auto got = runSgemm(kM, kN, kK, a, b, 2);
        EXPECT_TRUE(allClose(want, got, 1e-4));
    }
}

// Cross-tier agreement, "almost bitwise" flavor: on positive data
// (no cancellation) every tier stays within a small ULP envelope of
// the portable kernel despite FMA contraction and different Kc
// association.
TEST(Microkernel, TiersAgreeWithPortableWithinUlps)
{
    DispatchStateGuard guard;
    Rng rng(17);
    const auto a = randomVec(kM * kK, rng, 0.5, 1.5);
    const auto b = randomVec(kK * kN, rng, 0.5, 1.5);
    setKernelTier(KernelTier::Portable);
    setBlocking(kTinyBlocking);
    const auto want = runSgemm(kM, kN, kK, a, b, 1);
    for (KernelTier tier : supportedKernelTiers()) {
        if (tier == KernelTier::Portable)
            continue;
        SCOPED_TRACE(kernelTierName(tier));
        setKernelTier(tier);
        setBlocking(kTinyBlocking);
        const auto got = runSgemm(kM, kN, kK, a, b, 1);
        EXPECT_TRUE(allCloseUlp(want.data(), got.data(), want.size(),
                                64));
    }
}

// Cross-tier agreement, mixed-sign flavor: cancellation voids a
// tight ULP bound, so the budget is relative with an absolute floor.
TEST(Microkernel, TiersAgreeWithPortableRelative)
{
    DispatchStateGuard guard;
    Rng rng(19);
    const auto a = randomVec(kM * kK, rng);
    const auto b = randomVec(kK * kN, rng);
    setKernelTier(KernelTier::Portable);
    const auto want = runSgemm(kM, kN, kK, a, b, 1);
    for (KernelTier tier : supportedKernelTiers()) {
        SCOPED_TRACE(kernelTierName(tier));
        setKernelTier(tier);
        const auto got = runSgemm(kM, kN, kK, a, b, 1);
        EXPECT_TRUE(allClose(want, got, 1e-4, 1e-3));
    }
}

// Products narrower than the active tier's register tile (winograd
// tile-GEMMs, narrow FC heads) fall back to the portable kernel, so
// their bits match the portable tier exactly — on every tier.
TEST(Microkernel, NarrowNFallsBackToPortableBitwise)
{
    DispatchStateGuard guard;
    Rng rng(23);
    const std::size_t m = 40, k = 33;
    for (KernelTier tier : supportedKernelTiers()) {
        const std::size_t narrow = microKernelFor(tier).nr - 1;
        const auto a = randomVec(m * k, rng);
        const auto b = randomVec(k * narrow, rng);
        setKernelTier(KernelTier::Portable);
        const auto want = runSgemm(m, narrow, k, a, b, 1);
        SCOPED_TRACE(kernelTierName(tier));
        setKernelTier(tier);
        const auto got = runSgemm(m, narrow, k, a, b, 1);
        EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                                 want.size() * sizeof(float)));
    }
}

// The prepacked hot path dispatches through the same tier with the
// same accumulation order: bitwise identical to plain sgemm per tier.
TEST(Microkernel, PrepackedBitwiseIdenticalPerTier)
{
    DispatchStateGuard guard;
    Rng rng(29);
    const auto a = randomVec(kM * kK, rng);
    const auto b = randomVec(kK * kN, rng);
    PackedPanel panel;
    packWeights(false, kK, kN, b.data(), panel);
    for (KernelTier tier : supportedKernelTiers()) {
        SCOPED_TRACE(kernelTierName(tier));
        setKernelTier(tier);
        setThreadCount(2);
        std::vector<float> plain(kM * kN, 0.0f), packed(kM * kN, 0.0f);
        sgemm(false, false, kM, kN, kK, a.data(), b.data(),
              plain.data());
        sgemmPrepacked(kM, kN, kK, a.data(), panel, packed.data());
        EXPECT_EQ(0, std::memcmp(plain.data(), packed.data(),
                                 plain.size() * sizeof(float)));
    }
}

// setKernelTier/setBlocking pins are visible and resettable.
TEST(Microkernel, PinAndResetDispatchState)
{
    DispatchStateGuard guard;
    EXPECT_FALSE(kernelTierPinned());
    EXPECT_FALSE(blockingPinned());
    setKernelTier(KernelTier::Portable);
    EXPECT_TRUE(kernelTierPinned());
    EXPECT_EQ(activeKernelTier(), KernelTier::Portable);
    const GemmBlocking blk{48, 40, 64, 4};
    setBlocking(blk);
    EXPECT_TRUE(blockingPinned());
    EXPECT_TRUE(activeBlocking() == blk);
    resetKernelTier();
    resetBlocking();
    EXPECT_FALSE(kernelTierPinned());
    EXPECT_FALSE(blockingPinned());
    EXPECT_TRUE(kernelTierSupported(activeKernelTier()));
}

} // namespace
} // namespace pcnn
