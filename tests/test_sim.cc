/**
 * @file
 * Unit tests for the CTA-level simulator: schedulers (RR vs PSM,
 * Fig. 7), work conservation, energy accounting, and power gating.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "gpu/gpu_spec.hh"
#include "gpu/kernel_model.hh"
#include "gpu/sim/cta_scheduler.hh"
#include "gpu/sim/energy_model.hh"
#include "gpu/sim/gpu_sim.hh"

namespace pcnn {
namespace {

/** A simple compute-bound kernel for scheduler experiments. */
KernelDesc
kernel(std::size_t grid, double cta_flops = 1e7,
       std::size_t block = 256)
{
    KernelDesc k;
    k.name = "test";
    k.gridSize = grid;
    k.ctaWorkFlops = cta_flops;
    k.blockSize = block;
    k.issueDensity = 0.6;
    k.bytesPerFlop = 0.0;
    return k;
}

/** A 4-SM toy GPU matching the Fig. 7 illustration. */
GpuSpec
toyGpu()
{
    GpuSpec g = jetsonTx1();
    g.name = "Toy4";
    g.numSMs = 4;
    return g;
}

// ------------------------------------------------------ CtaScheduler

TEST(CtaScheduler, RoundRobinDealsAcrossSms)
{
    RoundRobinScheduler rr;
    std::vector<std::size_t> resident(4, 0);
    for (int i = 0; i < 4; ++i) {
        const std::size_t sm = rr.place(resident, 2);
        ASSERT_LT(sm, 4u);
        resident[sm]++;
    }
    // Fig. 7 RR: four CTAs on four different SMs.
    EXPECT_EQ(resident, (std::vector<std::size_t>{1, 1, 1, 1}));
}

TEST(CtaScheduler, PsmPacksLowSmsFirst)
{
    PrioritySmScheduler psm(4);
    std::vector<std::size_t> resident(4, 0);
    for (int i = 0; i < 4; ++i) {
        const std::size_t sm = psm.place(resident, 2);
        ASSERT_LT(sm, 4u);
        resident[sm]++;
    }
    // Fig. 7 PSM: two CTAs each on SM0 and SM1, SM2/SM3 untouched.
    EXPECT_EQ(resident, (std::vector<std::size_t>{2, 2, 0, 0}));
}

TEST(CtaScheduler, PsmRespectsSmBudget)
{
    PrioritySmScheduler psm(2);
    std::vector<std::size_t> resident(4, 0);
    resident[0] = resident[1] = 3;
    EXPECT_EQ(psm.place(resident, 3), CtaScheduler::noSm);
}

TEST(CtaScheduler, RrReportsFullWhenAllAtLimit)
{
    RoundRobinScheduler rr;
    std::vector<std::size_t> resident(3, 2);
    EXPECT_EQ(rr.place(resident, 2), CtaScheduler::noSm);
}

TEST(CtaScheduler, FactoryNames)
{
    EXPECT_EQ(makeScheduler(SchedKind::RoundRobin, 4)->name(), "RR");
    EXPECT_EQ(makeScheduler(SchedKind::PrioritySM, 4, 2)->name(),
              "PSM");
    EXPECT_EQ(schedKindName(SchedKind::PrioritySM), "PSM");
}

// ------------------------------------------------------- EnergyModel

TEST(EnergyModel, IntervalDecomposition)
{
    const GpuSpec g = k20c();
    const EnergyModel em(g);
    const EnergyBreakdown e = em.interval(2.0, 13, 1e12);
    EXPECT_NEAR(e.baseJ, g.basePowerW * 2.0, 1e-9);
    EXPECT_NEAR(e.staticJ, g.smStaticPowerW * 13 * 2.0, 1e-9);
    EXPECT_NEAR(e.dynamicJ, g.dynEnergyPerFlopJ * 1e12, 1e-9);
    EXPECT_NEAR(e.total(), e.baseJ + e.staticJ + e.dynamicJ, 1e-12);
}

TEST(EnergyModel, GatingRemovesStaticPower)
{
    const EnergyModel em(k20c());
    const EnergyBreakdown all = em.interval(1.0, 13, 0.0);
    const EnergyBreakdown two = em.interval(1.0, 2, 0.0);
    EXPECT_GT(all.total(), two.total());
    EXPECT_NEAR(all.staticJ / 13.0, two.staticJ / 2.0, 1e-9);
}

TEST(EnergyModel, AveragePower)
{
    const EnergyModel em(jetsonTx1());
    const EnergyBreakdown e = em.interval(0.5, 2, 0.0);
    EXPECT_NEAR(em.averagePowerW(e, 0.5), e.total() / 0.5, 1e-12);
}

// ------------------------------------------------------------ GpuSim

TEST(GpuSim, ExecutesAllWork)
{
    const GpuSim sim(toyGpu());
    const KernelDesc k = kernel(10);
    LaunchConfig cfg;
    cfg.tlpLimit = 2;
    const SimResult r = sim.runKernel(k, cfg);
    EXPECT_NEAR(r.flops, 10 * 1e7, 1.0);
    EXPECT_GT(r.timeS, 0.0);
}

TEST(GpuSim, TimeShrinksWithMoreParallelism)
{
    const GpuSim sim(toyGpu());
    LaunchConfig one;
    one.tlpLimit = 1;
    LaunchConfig four;
    four.tlpLimit = 4;
    const KernelDesc k = kernel(32);
    EXPECT_GT(sim.runKernel(k, one).timeS,
              sim.runKernel(k, four).timeS);
}

TEST(GpuSim, Fig7PsmMatchesRrWithHalfTheSms)
{
    // The Fig. 7 experiment: 4 CTAs, optTLP 2, 4 SMs. PSM uses two
    // SMs; RR spreads over four. Performance is nearly equal; PSM
    // powers half the SMs.
    const GpuSim sim(toyGpu());
    const KernelDesc k = kernel(4);

    LaunchConfig rr;
    rr.scheduler = SchedKind::RoundRobin;
    rr.tlpLimit = 2;
    const SimResult r_rr = sim.runKernel(k, rr);
    EXPECT_EQ(r_rr.smsUsed, 4u);
    EXPECT_EQ(r_rr.smsPowered, 4u);

    LaunchConfig psm;
    psm.scheduler = SchedKind::PrioritySM;
    psm.tlpLimit = 2;
    psm.smsAllowed = 2;
    psm.powerGateIdle = true;
    const SimResult r_psm = sim.runKernel(k, psm);
    EXPECT_EQ(r_psm.smsUsed, 2u);
    EXPECT_EQ(r_psm.smsPowered, 2u);

    // "Nearly the same performance with half the SM resources".
    EXPECT_LT(r_psm.timeS, r_rr.timeS * 2.0);
    // And less energy, since two SMs are gated.
    EXPECT_LT(r_psm.energy.staticJ / r_psm.timeS,
              r_rr.energy.staticJ / r_rr.timeS);
}

TEST(GpuSim, PsmBusyTimeConcentrated)
{
    const GpuSim sim(toyGpu());
    const KernelDesc k = kernel(8);
    LaunchConfig psm;
    psm.scheduler = SchedKind::PrioritySM;
    psm.tlpLimit = 4;
    psm.smsAllowed = 2;
    const SimResult r = sim.runKernel(k, psm);
    EXPECT_GT(r.smBusyS[0], 0.0);
    EXPECT_GT(r.smBusyS[1], 0.0);
    EXPECT_DOUBLE_EQ(r.smBusyS[2], 0.0);
    EXPECT_DOUBLE_EQ(r.smBusyS[3], 0.0);
}

TEST(GpuSim, BandwidthBoundKernelStretches)
{
    const GpuSpec tx1 = jetsonTx1();
    const GpuSim sim(tx1);
    KernelDesc k = kernel(16, 1e8, 256);
    k.bytesPerFlop = 1.0; // absurdly traffic-heavy
    LaunchConfig cfg;
    cfg.tlpLimit = 4;
    const SimResult r = sim.runKernel(k, cfg);
    const double bw_time = 16 * 1e8 * 1.0 / tx1.bandwidthBytes();
    EXPECT_GE(r.timeS, bw_time);
}

TEST(GpuSim, LaunchesScaleLinearly)
{
    const GpuSim sim(toyGpu());
    KernelDesc k1 = kernel(6);
    KernelDesc k3 = k1;
    k3.launches = 3;
    LaunchConfig cfg;
    cfg.tlpLimit = 2;
    const SimResult r1 = sim.runKernel(k1, cfg);
    const SimResult r3 = sim.runKernel(k3, cfg);
    EXPECT_NEAR(r3.timeS, 3.0 * r1.timeS, 1e-9);
    EXPECT_NEAR(r3.flops, 3.0 * r1.flops, 1.0);
    EXPECT_NEAR(r3.energy.total(), 3.0 * r1.energy.total(), 1e-9);
}

TEST(GpuSim, SequenceAccumulates)
{
    const GpuSim sim(toyGpu());
    LaunchConfig cfg;
    cfg.tlpLimit = 2;
    const SimResult a = sim.runKernel(kernel(4), cfg);
    const SimResult b = sim.runKernel(kernel(8), cfg);
    const SimResult seq =
        sim.runSequence({{kernel(4), cfg}, {kernel(8), cfg}});
    EXPECT_NEAR(seq.timeS, a.timeS + b.timeS, 1e-12);
    EXPECT_NEAR(seq.flops, a.flops + b.flops, 1.0);
}

TEST(GpuSim, FixedIntervalEnergy)
{
    const GpuSpec g = toyGpu();
    const GpuSim sim(g);
    const SimResult r = sim.fixedInterval(1.0, 2, 1e9);
    EXPECT_DOUBLE_EQ(r.timeS, 1.0);
    EXPECT_NEAR(r.energy.staticJ, 2 * g.smStaticPowerW, 1e-9);
    EXPECT_NEAR(r.energy.dynamicJ, g.dynEnergyPerFlopJ * 1e9, 1e-12);
}

TEST(GpuSim, SimMatchesAnalyticalModelRoughly)
{
    // The event-driven simulator and the closed-form kernel time
    // should agree within a modest factor on a uniform kernel.
    const GpuSpec gpu = k20c();
    const SgemmModel model(gpu, {tileByName(64, 64), 0});
    const GemmShape g{384, 169 * 32, 2304};

    KernelDesc k;
    k.name = "conv3";
    k.gridSize = model.gridSize(g);
    k.ctaWorkFlops = model.ctaWorkFlops(g);
    k.blockSize = 256;
    k.issueDensity = model.timingDensity();
    k.bytesPerFlop = model.trafficBytesPerFlop();

    LaunchConfig cfg;
    cfg.tlpLimit = model.occ().ctasPerSm;
    const GpuSim sim(gpu);
    const double t_sim = sim.runKernel(k, cfg).timeS;
    const double t_model = model.kernelTime(g);
    EXPECT_LT(t_sim, t_model * 1.5);
    EXPECT_GT(t_sim, t_model * 0.5);
}

TEST(GpuSim, NoGatingPowersWholeGpu)
{
    const GpuSim sim(toyGpu());
    const KernelDesc k = kernel(2);
    LaunchConfig cfg;
    cfg.tlpLimit = 2;
    cfg.powerGateIdle = false;
    EXPECT_EQ(sim.runKernel(k, cfg).smsPowered, 4u);
    cfg.powerGateIdle = true;
    EXPECT_LE(sim.runKernel(k, cfg).smsPowered, 2u);
}

} // namespace
} // namespace pcnn
