/**
 * @file
 * Tests for the extended nn substrate: LRN, average pooling, padded
 * max pooling, inception modules, and weight serialization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "data/synthetic.hh"
#include "nn/avgpool_layer.hh"
#include "nn/inception_layer.hh"
#include "nn/lrn_layer.hh"
#include "nn/model_zoo.hh"
#include "nn/pool_layer.hh"
#include "nn/serialize.hh"
#include "pcnn/offline/compiler.hh"
#include "train/trainer.hh"

namespace pcnn {
namespace {

// ---------------------------------------------------------------- LRN

TEST(LrnLayer, IdentityShapeAndDirection)
{
    LrnLayer lrn("lrn");
    Rng rng(1);
    Tensor x(2, 8, 3, 3);
    x.fillGaussian(rng, 0, 2);
    const Tensor y = lrn.forward(x, false);
    EXPECT_EQ(y.shape(), x.shape());
    // Normalization shrinks magnitudes (scale >= k = 2, beta > 0).
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_LE(std::abs(y[i]), std::abs(x[i]) + 1e-6);
        EXPECT_EQ(std::signbit(y[i]), std::signbit(x[i]));
    }
}

TEST(LrnLayer, StrongNeighborsSuppressMore)
{
    // Same activation, but one sits among large neighbors.
    LrnLayer lrn("lrn", 5, 0.5, 0.75, 2.0);
    Tensor x(1, 5, 1, 1);
    x.fill(0.0f);
    x.at(0, 2, 0, 0) = 1.0f; // isolated
    const Tensor y_isolated = lrn.forward(x, false);

    x.fill(3.0f); // loud neighborhood
    x.at(0, 2, 0, 0) = 1.0f;
    const Tensor y_crowded = lrn.forward(x, false);
    EXPECT_GT(y_isolated.at(0, 2, 0, 0), y_crowded.at(0, 2, 0, 0));
}

TEST(LrnLayer, GradientMatchesNumeric)
{
    LrnLayer lrn("lrn", 3, 0.3, 0.75, 2.0);
    Rng rng(2);
    Tensor x(1, 6, 2, 2);
    x.fillGaussian(rng, 0, 1);
    Tensor w_obj(x.shape());
    w_obj.fillGaussian(rng, 0, 1);

    auto objective = [&]() {
        const Tensor y = lrn.forward(x, true);
        double s = 0.0;
        for (std::size_t i = 0; i < y.size(); ++i)
            s += double(y[i]) * double(w_obj[i]);
        return s;
    };
    objective();
    Tensor dy = w_obj;
    const Tensor dx = lrn.backward(dy);

    const float eps = 1e-3f;
    for (std::size_t i = 0; i < x.size(); i += 3) {
        const float orig = x[i];
        x[i] = orig + eps;
        const double up = objective();
        x[i] = orig - eps;
        const double dn = objective();
        x[i] = orig;
        const double numeric = (up - dn) / (2.0 * eps);
        ASSERT_NEAR(dx[i], numeric, 1e-3 + 0.02 * std::abs(numeric))
            << "coord " << i;
    }
}

// ------------------------------------------------------------ avgpool

TEST(AvgPoolLayer, WindowedAverage)
{
    AvgPoolLayer pool("ap", 2, 2);
    Tensor x(1, 1, 2, 2);
    x[0] = 1;
    x[1] = 2;
    x[2] = 3;
    x[3] = 6;
    const Tensor y = pool.forward(x, false);
    ASSERT_EQ(y.size(), 1u);
    EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(AvgPoolLayer, GlobalMode)
{
    AvgPoolLayer pool("gap", 0);
    Rng rng(3);
    Tensor x(2, 4, 7, 7);
    x.fillGaussian(rng, 1.0, 0.5);
    const Tensor y = pool.forward(x, false);
    EXPECT_EQ(y.shape(), (Shape{2, 4, 1, 1}));
    // Per-channel mean.
    double manual = 0.0;
    for (std::size_t h = 0; h < 7; ++h)
        for (std::size_t w = 0; w < 7; ++w)
            manual += x.at(1, 2, h, w);
    EXPECT_NEAR(y.at(1, 2, 0, 0), manual / 49.0, 1e-4);
}

TEST(AvgPoolLayer, BackwardSpreadsUniformly)
{
    AvgPoolLayer pool("ap", 2, 2);
    Tensor x(1, 1, 2, 2);
    x.fill(1.0f);
    pool.forward(x, true);
    Tensor dy(1, 1, 1, 1);
    dy[0] = 4.0f;
    const Tensor dx = pool.backward(dy);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(dx[i], 1.0f);
}

// --------------------------------------------------- padded max pool

TEST(MaxPoolLayer, PaddedSameSize)
{
    // GoogLeNet inception pool: 3x3 stride 1 pad 1 keeps the size.
    MaxPoolLayer pool("p", 3, 1, 1);
    const Shape out = pool.outputShape(Shape{1, 2, 8, 8});
    EXPECT_EQ(out.h, 8u);
    EXPECT_EQ(out.w, 8u);
}

TEST(MaxPoolLayer, PaddingNeverWins)
{
    MaxPoolLayer pool("p", 3, 1, 1);
    Tensor x(1, 1, 2, 2);
    x.fill(-5.0f); // all negative; zero padding must not leak in
    const Tensor y = pool.forward(x, false);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_FLOAT_EQ(y[i], -5.0f);
}

// ---------------------------------------------------------- inception

TEST(InceptionLayer, StandardModuleShape)
{
    Rng rng(4);
    auto module = InceptionLayer::standard("3a", 192, 28, 64, 96, 128,
                                           16, 32, 32, rng);
    // GoogLeNet 3a: 64 + 128 + 32 + 32 = 256 channels, same spatial.
    const Shape out = module->outputShape(Shape{1, 192, 28, 28});
    EXPECT_EQ(out.c, 256u);
    EXPECT_EQ(out.h, 28u);
    EXPECT_EQ(module->branchCount(), 4u);
    EXPECT_EQ(module->convLayers().size(), 6u);
}

TEST(InceptionLayer, ForwardConcatenatesBranches)
{
    Rng rng(5);
    auto module = InceptionLayer::standard("t", 4, 6, 2, 2, 3, 2, 2, 2,
                                           rng);
    Tensor x(2, 4, 6, 6);
    x.fillGaussian(rng, 0, 1);
    const Tensor y = module->forward(x, false);
    EXPECT_EQ(y.shape(), (Shape{2, 9, 6, 6}));
    // Branch 0 (1x1 conv + relu) alone must equal channels [0, 2).
    // Recreate with the same seed to get identical weights.
    Rng rng2(5);
    auto module2 = InceptionLayer::standard("t", 4, 6, 2, 2, 3, 2, 2,
                                            2, rng2);
    const Tensor y2 = module2->forward(x, false);
    EXPECT_LT(y.maxAbsDiff(y2), 1e-6);
}

TEST(InceptionLayer, GradientFlowsThroughAllBranches)
{
    Rng rng(6);
    auto module = InceptionLayer::standard("t", 3, 5, 2, 2, 2, 2, 2, 2,
                                           rng);
    Tensor x(1, 3, 5, 5);
    x.fillGaussian(rng, 0, 1);
    const Tensor y = module->forward(x, true);
    Tensor dy(y.shape());
    dy.fill(1.0f);
    for (Param *p : module->params())
        p->zeroGrad();
    const Tensor dx = module->backward(dy);
    EXPECT_EQ(dx.shape(), x.shape());
    // Every conv's weight gradient received signal.
    for (Param *p : module->params()) {
        double mag = 0.0;
        for (std::size_t i = 0; i < p->grad.size(); ++i)
            mag += std::abs(p->grad[i]);
        EXPECT_GT(mag, 0.0);
    }
}

TEST(InceptionLayer, NumericInputGradient)
{
    Rng rng(7);
    auto module = InceptionLayer::standard("t", 2, 4, 1, 1, 2, 1, 1, 1,
                                           rng);
    Tensor x(1, 2, 4, 4);
    x.fillGaussian(rng, 0, 1);
    Tensor w_obj(module->outputShape(x.shape()));
    w_obj.fillGaussian(rng, 0, 1);

    auto objective = [&]() {
        const Tensor y = module->forward(x, true);
        double s = 0.0;
        for (std::size_t i = 0; i < y.size(); ++i)
            s += double(y[i]) * double(w_obj[i]);
        return s;
    };
    objective();
    Tensor dy = w_obj;
    const Tensor dx = module->backward(dy);

    const float eps = 1e-2f;
    for (std::size_t i = 0; i < x.size(); i += 5) {
        const float orig = x[i];
        x[i] = orig + eps;
        const double up = objective();
        x[i] = orig - eps;
        const double dn = objective();
        x[i] = orig;
        const double numeric = (up - dn) / (2.0 * eps);
        ASSERT_NEAR(dx[i], numeric, 2e-2 * (1.0 + std::abs(numeric)));
    }
}

TEST(MiniInception, TrainsOnSyntheticTask)
{
    SyntheticTaskConfig cfg;
    cfg.difficulty = 0.35;
    cfg.seed = 8;
    SyntheticTask task(cfg);
    Dataset train_set = task.generate(768);
    Dataset test_set = task.generate(192);

    Rng rng(9);
    Network net = makeMiniInception(rng);
    // Inner inception convs are visible for perforation control.
    EXPECT_EQ(net.convLayers().size(), 7u); // stem + 6 module convs

    TrainConfig tc;
    tc.epochs = 5;
    Trainer trainer(net, tc);
    trainer.fit(train_set);
    const EvalResult r = trainer.evaluate(test_set);
    EXPECT_GT(r.accuracy, 0.7);
}

TEST(MiniInception, PerforationWorksInsideBranches)
{
    Rng rng(10);
    Network net = makeMiniInception(rng);
    Tensor x(1, 1, 16, 16);
    x.fillGaussian(rng, 0, 1);
    const Tensor y0 = net.forward(x, false);
    for (ConvLayer *c : net.convLayers())
        c->setComputedPositions(c->fullPositions() / 2);
    const Tensor y1 = net.forward(x, false);
    EXPECT_EQ(y0.shape(), y1.shape());
    net.clearPerforation();
    const Tensor y2 = net.forward(x, false);
    EXPECT_LT(y0.maxAbsDiff(y2), 1e-6);
}

// ------------------------------------------------- interpolation mode

TEST(Interpolation, AverageExactAtComputedPositions)
{
    Rng rng(60);
    ConvSpec s;
    s.name = "c";
    s.inC = 2;
    s.outC = 3;
    s.kernel = 3;
    s.stride = 1;
    s.pad = 1;
    s.inH = s.inW = 12;
    ConvLayer exact(s, rng);
    Rng rng2(60);
    ConvLayer perf(s, rng2); // same weights
    perf.setComputedPositions(36);
    perf.setInterpolationMode(InterpolationMode::Average);

    Tensor x(1, 2, 12, 12);
    x.fillGaussian(rng, 0, 1);
    const Tensor ye = exact.forward(x, false);
    const Tensor yp = perf.forward(x, false);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < yp.size(); ++i)
        hits += std::abs(yp[i] - ye[i]) < 1e-5f;
    EXPECT_GE(hits, 3u * perf.computedPositions());
}

TEST(Interpolation, AverageBeatsNearestOnSmoothSignals)
{
    // On spatially smooth activations, averaging the surrounding
    // computed values reconstructs better than copying the nearest
    // one (the reason Fig. 11 interpolates rather than replicates).
    Rng rng(61);
    ConvSpec s;
    s.name = "c";
    s.inC = 1;
    s.outC = 1;
    s.kernel = 3;
    s.stride = 1;
    s.pad = 1;
    s.inH = s.inW = 16;

    auto reconstruction_error = [&](InterpolationMode mode) {
        Rng wr(62); // identical weights across modes
        ConvLayer exact(s, wr);
        Rng wr2(62);
        ConvLayer perf(s, wr2);
        perf.setComputedPositions(64);
        perf.setInterpolationMode(mode);

        // Smooth input: low-frequency ramp + gentle sinusoid.
        Tensor x(1, 1, 16, 16);
        for (std::size_t y = 0; y < 16; ++y)
            for (std::size_t w = 0; w < 16; ++w)
                x.at(0, 0, y, w) =
                    float(0.2 * y + 0.1 * w +
                          std::sin(0.4 * double(y + w)));
        const Tensor ye = exact.forward(x, false);
        const Tensor yp = perf.forward(x, false);
        double err = 0.0;
        for (std::size_t i = 0; i < ye.size(); ++i)
            err += std::abs(ye[i] - yp[i]);
        return err / double(ye.size());
    };
    EXPECT_LT(reconstruction_error(InterpolationMode::Average),
              reconstruction_error(InterpolationMode::Nearest));
}

TEST(Interpolation, ModePreservedAcrossResampling)
{
    Rng rng(63);
    ConvSpec s;
    s.name = "c";
    s.inC = 1;
    s.outC = 1;
    s.kernel = 3;
    s.stride = 1;
    s.pad = 1;
    s.inH = s.inW = 8;
    ConvLayer layer(s, rng);
    layer.setInterpolationMode(InterpolationMode::Average);
    layer.setComputedPositions(16);
    layer.setComputedPositions(32);
    EXPECT_EQ(layer.interpolationMode(), InterpolationMode::Average);
    Tensor x(1, 1, 8, 8);
    x.fillGaussian(rng, 0, 1);
    EXPECT_EQ(layer.forward(x, false).shape(), (Shape{1, 1, 8, 8}));
}

TEST(MiniAlexNet, TrainsWithLrnAndGroupedConv)
{
    SyntheticTaskConfig cfg;
    cfg.difficulty = 0.35;
    cfg.seed = 40;
    SyntheticTask task(cfg);
    Dataset train_set = task.generate(768);
    Dataset test_set = task.generate(192);

    Rng rng(41);
    Network net = makeMiniAlexNet(rng);
    // Structure: 2 convs (one grouped), 2 fcs.
    EXPECT_EQ(net.convLayers().size(), 2u);
    EXPECT_EQ(net.convLayers()[1]->spec().groups, 2u);
    EXPECT_EQ(net.fcLayers().size(), 2u);

    TrainConfig tc;
    tc.epochs = 5;
    Trainer trainer(net, tc);
    const auto history = trainer.fit(train_set);
    EXPECT_LT(history.back().trainLoss, history.front().trainLoss);
    EXPECT_GT(trainer.evaluate(test_set).accuracy, 0.6);
}

TEST(MiniAlexNet, CompilesAndTunes)
{
    Rng rng(42);
    Network net = makeMiniAlexNet(rng);
    const OfflineCompiler compiler(jetsonTx1());
    const CompiledPlan plan =
        compiler.compileAtBatch(describe(net), 32);
    EXPECT_EQ(plan.layers.size(), 2u);
    // Grouped conv lowers to 2 GEMMs.
    EXPECT_EQ(plan.layers[1].layer.gemmCount(), 2u);
    EXPECT_GT(plan.latencyS(), 0.0);
}

// ------------------------------------------------------ serialization

TEST(Serialize, RoundTripPreservesWeights)
{
    Rng rng(11);
    Network a = makeMiniNet(MiniSize::Medium, rng);
    Rng rng2(12); // different weights
    Network b = makeMiniNet(MiniSize::Medium, rng2);

    Tensor x(2, 1, 16, 16);
    Rng xr(13);
    x.fillGaussian(xr, 0, 1);
    const Tensor ya = a.forward(x, false);
    const Tensor yb_before = b.forward(x, false);
    EXPECT_GT(ya.maxAbsDiff(yb_before), 1e-3);

    const auto bytes = serializeWeights(a);
    ASSERT_TRUE(deserializeWeights(b, bytes));
    const Tensor yb_after = b.forward(x, false);
    EXPECT_LT(ya.maxAbsDiff(yb_after), 1e-7);
}

TEST(Serialize, RejectsWrongArchitecture)
{
    Rng rng(14);
    Network a = makeMiniNet(MiniSize::Small, rng);
    Network b = makeMiniNet(MiniSize::Large, rng);
    const auto bytes = serializeWeights(a);
    EXPECT_FALSE(deserializeWeights(b, bytes));
}

TEST(Serialize, RejectsCorruptedData)
{
    Rng rng(15);
    Network net = makeMiniNet(MiniSize::Small, rng);
    auto bytes = serializeWeights(net);
    EXPECT_FALSE(deserializeWeights(net, {}));
    auto truncated = bytes;
    truncated.resize(truncated.size() / 2);
    EXPECT_FALSE(deserializeWeights(net, truncated));
    auto bad_magic = bytes;
    bad_magic[0] ^= 0xFF;
    EXPECT_FALSE(deserializeWeights(net, bad_magic));
    // An oversized payload is as suspect as a truncated one.
    auto trailing = bytes;
    trailing.push_back(0);
    EXPECT_FALSE(deserializeWeights(net, trailing));
}

TEST(Serialize, FileRoundTrip)
{
    Rng rng(16);
    Network a = makeMiniNet(MiniSize::Small, rng);
    const std::string path = "/tmp/pcnn_weights_test.bin";
    ASSERT_TRUE(saveWeights(a, path));
    Rng rng2(17);
    Network b = makeMiniNet(MiniSize::Small, rng2);
    ASSERT_TRUE(loadWeights(b, path));

    Tensor x(1, 1, 16, 16);
    Rng xr(18);
    x.fillGaussian(xr, 0, 1);
    EXPECT_LT(a.forward(x, false).maxAbsDiff(b.forward(x, false)),
              1e-7);
    std::remove(path.c_str());
}

TEST(Serialize, InceptionRoundTrip)
{
    Rng rng(19);
    Network a = makeMiniInception(rng);
    Rng rng2(20);
    Network b = makeMiniInception(rng2);
    ASSERT_TRUE(deserializeWeights(b, serializeWeights(a)));
    Tensor x(1, 1, 16, 16);
    Rng xr(21);
    x.fillGaussian(xr, 0, 1);
    EXPECT_LT(a.forward(x, false).maxAbsDiff(b.forward(x, false)),
              1e-7);
}

} // namespace
} // namespace pcnn
