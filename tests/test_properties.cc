/**
 * @file
 * Cross-cutting property tests: compiled-plan invariants over the
 * whole (GPU x network) grid, simulator work conservation over
 * randomized kernels, tuner/compiler determinism, and SoC metric
 * properties.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "gpu/sim/gpu_sim.hh"
#include "nn/model_zoo.hh"
#include "pcnn/offline/batch_selector.hh"
#include "pcnn/offline/compiler.hh"
#include "pcnn/runtime/accuracy_tuner.hh"
#include "pcnn/satisfaction.hh"
#include "pcnn/schedulers/scheduler.hh"

namespace pcnn {
namespace {

// ------------------------------------------- compiled plan invariants

class PlanGrid
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(PlanGrid, Invariants)
{
    const auto [gi, ni, batch_exp] = GetParam();
    const GpuSpec gpu = allGpus()[gi];
    const NetDescriptor net = paperNetworks()[ni];
    const std::size_t batch = std::size_t(1) << batch_exp;

    const OfflineCompiler compiler(gpu);
    const CompiledPlan plan = compiler.compileAtBatch(net, batch);

    ASSERT_EQ(plan.layers.size(), net.convs.size());
    double conv_sum = 0.0;
    for (const LayerSchedule &ls : plan.layers) {
        // Resource model output stays within hardware bounds.
        EXPECT_GE(ls.kernel.optSM, 1u);
        EXPECT_LE(ls.kernel.optSM, gpu.numSMs);
        EXPECT_GE(ls.kernel.optTLP, 1u);
        const Occupancy occ = occupancy(gpu, ls.kernel.config.tile,
                                        ls.kernel.config.regsPerThread);
        EXPECT_EQ(ls.kernel.optTLP, occ.ctasPerSm);
        // Eq. 11 invariant: no extra invocations vs the whole GPU.
        const SgemmModel model(gpu, ls.kernel.config);
        const std::size_t grid = model.gridSize(ls.gemm);
        auto inv = [&](std::size_t sms) {
            return (grid + ls.kernel.optTLP * sms - 1) /
                   (ls.kernel.optTLP * sms);
        };
        EXPECT_EQ(inv(ls.kernel.optSM), inv(gpu.numSMs))
            << ls.layer.name;
        EXPECT_GT(ls.timeS, 0.0);
        conv_sum += ls.timeS;
    }
    EXPECT_NEAR(plan.time.convS, conv_sum, conv_sum * 1e-9);
    EXPECT_GT(plan.latencyS(), plan.time.convS);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlanGrid,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 3),
                       ::testing::Values(0, 3, 6)));

TEST(PlanDeterminism, SameInputsSamePlan)
{
    const OfflineCompiler a(jetsonTx1()), b(jetsonTx1());
    const CompiledPlan pa = a.compileAtBatch(googleNet(), 4);
    const CompiledPlan pb = b.compileAtBatch(googleNet(), 4);
    ASSERT_EQ(pa.layers.size(), pb.layers.size());
    for (std::size_t i = 0; i < pa.layers.size(); ++i) {
        EXPECT_EQ(pa.layers[i].kernel.config.str(),
                  pb.layers[i].kernel.config.str());
        EXPECT_DOUBLE_EQ(pa.layers[i].timeS, pb.layers[i].timeS);
    }
}

// --------------------------------------------- simulator conservation

class SimRandomKernels : public ::testing::TestWithParam<int>
{
};

TEST_P(SimRandomKernels, WorkConservedAndBoundsHold)
{
    Rng rng(std::uint64_t(GetParam()) * 7919 + 13);
    const GpuSpec gpu = allGpus()[rng.below(4)];
    const GpuSim sim(gpu);

    KernelDesc k;
    k.name = "rand";
    k.gridSize = 1 + rng.below(300);
    k.ctaWorkFlops = rng.uniform(1e5, 5e7);
    k.blockSize = std::size_t(64) << rng.below(3); // 64..256
    k.issueDensity = rng.uniform(0.3, 0.9);
    k.bytesPerFlop = rng.uniform(0.0, 0.2);

    LaunchConfig cfg;
    cfg.scheduler = rng.chance(0.5) ? SchedKind::RoundRobin
                                    : SchedKind::PrioritySM;
    cfg.tlpLimit = 1 + rng.below(8);
    if (cfg.scheduler == SchedKind::PrioritySM)
        cfg.smsAllowed = 1 + rng.below(gpu.numSMs);
    cfg.powerGateIdle = rng.chance(0.5);

    const SimResult r = sim.runKernel(k, cfg);
    // All the work was executed.
    EXPECT_NEAR(r.flops, double(k.gridSize) * k.ctaWorkFlops,
                r.flops * 1e-9);
    // Time is bounded below by the all-SM roofline and the bandwidth
    // bound, and above by fully serial execution.
    const double peak_rate = gpu.peakFlops() * k.issueDensity;
    const double bw_time =
        r.flops * k.bytesPerFlop / gpu.bandwidthBytes();
    EXPECT_GE(r.timeS + 1e-12,
              std::max(r.flops / peak_rate, bw_time));
    const double serial = r.flops /
                          (gpu.peakFlopsPerSM() * k.issueDensity *
                           SgemmModel::latencyFloor);
    EXPECT_LE(r.timeS, serial + 1.0);
    // Busy time never exceeds wall time on any SM.
    for (double b : r.smBusyS)
        EXPECT_LE(b, r.timeS + 1e-9);
    // Energy components are non-negative and consistent.
    EXPECT_GE(r.energy.baseJ, 0.0);
    EXPECT_GE(r.energy.staticJ, 0.0);
    EXPECT_NEAR(r.energy.dynamicJ,
                gpu.dynEnergyPerFlopJ * r.flops, 1e-9);
    EXPECT_LE(r.smsUsed, gpu.numSMs);
    EXPECT_LE(r.smsPowered, gpu.numSMs);
    EXPECT_GE(r.smsPowered, r.smsUsed == 0 ? 0 : 1);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, SimRandomKernels,
                         ::testing::Range(0, 24));

// --------------------------------------------------- tuner properties

TEST(TunerProperties, MoreWorkNeverTunesSlower)
{
    // Growing the batch (more N) must not reduce predicted time.
    const KernelTuner tuner(gtx970m());
    const ConvSpec conv3 = alexNet().convs[2];
    double last = 0.0;
    for (std::size_t b : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const TunedKernel k =
            tuner.tune(conv3.gemmShape(b), TuneObjective::TimeModel);
        EXPECT_GE(k.predictedTimeS, last * 0.999) << "batch " << b;
        last = k.predictedTimeS;
    }
}

TEST(TunerProperties, TuningPathSpeedupsMonotone)
{
    const OfflineCompiler compiler(jetsonTx1());
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    TunerConfig cfg;
    cfg.entropyThreshold = 10.0; // explore to exhaustion
    cfg.maxIterations = 40;
    const AccuracyTuner tuner(jetsonTx1(), cfg);
    const TuningTable table =
        tuner.tuneModeled(plan, EntropyProfile::representative());
    for (std::size_t i = 1; i < table.levels(); ++i) {
        EXPECT_GE(table.entry(i).speedup,
                  table.entry(i - 1).speedup - 1e-9);
        EXPECT_GE(table.entry(i).entropy,
                  table.entry(i - 1).entropy - 0.05);
    }
}

// -------------------------------------------------- failure injection

TEST(FailureInjection, NetworkBiggerThanDeviceMemory)
{
    // A GPU whose DRAM cannot even hold VGG's weights: the batch
    // selector must refuse loudly rather than emit a bogus plan.
    GpuSpec tiny = jetsonTx1();
    tiny.dramMB = 128.0; // < 552 MB of VGG weights
    const BatchSelector selector(tiny);
    EXPECT_EQ(selector.memoryCap(vgg16()), 0u);
    EXPECT_DEATH((void)selector.backgroundBatch(vgg16()),
                 "does not fit");
}

TEST(FailureInjection, KernelThatCannotLaunchPanics)
{
    // A register budget so large no CTA fits the register file.
    GpuSpec gpu = k20c();
    gpu.registersPerSM = 1024; // absurd
    EXPECT_DEATH(SgemmModel(gpu, {tileByName(128, 128), 0}),
                 "cannot fit");
}

TEST(FailureInjection, DegenerateGemmPanics)
{
    const SgemmModel m(k20c(), {tileByName(64, 64), 0});
    EXPECT_DEATH((void)m.gridSize({0, 10, 10}), "degenerate");
}

TEST(FailureInjection, CompilerSurvivesMemoryTightNet)
{
    // VGG on the TX1: the cap is small but positive; the compiler
    // must produce a valid (small-batch) background plan.
    const OfflineCompiler compiler(jetsonTx1());
    const CompiledPlan plan =
        compiler.compile(vgg16(), imageTaggingApp());
    EXPECT_GE(plan.batch, 1u);
    const BatchSelector selector(jetsonTx1());
    EXPECT_LE(plan.batch, selector.memoryCap(vgg16()));
}

// ------------------------------------------------------ SoC properties

TEST(SocProperties, MonotoneInLatency)
{
    const UserRequirement req = inferRequirement(ageDetectionApp());
    double last = 1.0;
    for (double latency = 0.01; latency < 4.0; latency += 0.05) {
        const double s = socTime(latency, req);
        EXPECT_LE(s, last + 1e-12);
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
        last = s;
    }
}

TEST(SocProperties, MonotoneInEntropyAndEnergy)
{
    UserRequirement req;
    req.entropyThreshold = 0.8;
    double last = 10.0;
    for (double entropy = 0.1; entropy < 3.0; entropy += 0.1) {
        const double s = socAccuracy(entropy, req);
        EXPECT_LE(s, last + 1e-12);
        last = s;
    }
    // SoC falls as energy rises.
    EXPECT_GT(soc(0.01, 0.5, 1.0, req), soc(0.01, 0.5, 2.0, req));
}

// ------------------------------------------------ scheduler properties

TEST(SchedulerProperties, OutcomesDeterministic)
{
    const ScheduleContext ctx =
        makeContext(ageDetectionApp(), alexNet(), jetsonTx1());
    const auto zoo1 = allSchedulers();
    const auto zoo2 = allSchedulers();
    for (std::size_t i = 0; i < zoo1.size(); ++i) {
        const ScheduleOutcome a = zoo1[i]->run(ctx);
        const ScheduleOutcome b = zoo2[i]->run(ctx);
        EXPECT_DOUBLE_EQ(a.socScore, b.socScore) << a.scheduler;
        EXPECT_DOUBLE_EQ(a.latencyS, b.latencyS) << a.scheduler;
        EXPECT_EQ(a.batch, b.batch) << a.scheduler;
    }
}

} // namespace
} // namespace pcnn
