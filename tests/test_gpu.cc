/**
 * @file
 * Unit tests for the gpu module: specs, tiles, occupancy and the
 * analytical kernel model — validated against the paper's published
 * numbers (Table II, Table IV, Table V, Fig. 9).
 */

#include <gtest/gtest.h>

#include "gpu/gpu_spec.hh"
#include "gpu/kernel_model.hh"
#include "gpu/memory_model.hh"
#include "gpu/occupancy.hh"
#include "gpu/tile_config.hh"
#include "nn/model_zoo.hh"

namespace pcnn {
namespace {

// ----------------------------------------------------------- GpuSpec

TEST(GpuSpec, TableIICoreCounts)
{
    EXPECT_EQ(k20c().numSMs * k20c().coresPerSM, 2496u);
    EXPECT_EQ(titanX().numSMs * titanX().coresPerSM, 3072u);
    EXPECT_EQ(gtx970m().numSMs * gtx970m().coresPerSM, 1280u);
    EXPECT_EQ(jetsonTx1().numSMs * jetsonTx1().coresPerSM, 256u);
}

TEST(GpuSpec, TableVIParameters)
{
    const GpuSpec k = k20c();
    EXPECT_EQ(k.numSMs, 13u);
    EXPECT_EQ(k.registersPerSM, 65536u); // 64K x 32 bit
    EXPECT_EQ(k.maxThreadsPerSM, 2048u);
    const GpuSpec t = jetsonTx1();
    EXPECT_EQ(t.numSMs, 2u);
    EXPECT_NEAR(t.coreClockMHz, 998.0, 1e-9);
}

TEST(GpuSpec, PeakFlops)
{
    // K20c: 2 * 706 MHz * 2496 cores = 3.52 TFLOP/s.
    EXPECT_NEAR(k20c().peakFlops(), 3.52e12, 0.01e12);
    // TX1: ~0.51 TFLOP/s.
    EXPECT_NEAR(jetsonTx1().peakFlops(), 0.511e12, 0.01e12);
}

TEST(GpuSpec, LookupByName)
{
    EXPECT_EQ(gpuByName("TX1").platform, "Mobile");
    EXPECT_EQ(allGpus().size(), 4u);
}

// -------------------------------------------------------- TileConfig

TEST(TileConfig, CatalogueAccumulators)
{
    for (const TileConfig &t : tileCatalogue()) {
        EXPECT_EQ(t.accumulatorsPerThread() * t.blockSize, t.m * t.n)
            << t.str();
        EXPECT_GE(t.naturalRegs, t.accumulatorsPerThread())
            << t.str() << ": accumulators must fit in registers";
    }
}

TEST(TileConfig, PaperCharacterizedValues)
{
    // Table IV rows.
    const TileConfig t64 = tileByName(64, 64);
    EXPECT_EQ(t64.naturalRegs, 79u);
    EXPECT_EQ(t64.sharedMemBytes, 8468u);
    EXPECT_EQ(t64.blockSize, 256u);
    const TileConfig t128x64 = tileByName(128, 64);
    EXPECT_EQ(t128x64.naturalRegs, 120u);
    EXPECT_EQ(t128x64.sharedMemBytes, 12544u);
    const TileConfig t32 = tileByName(32, 32);
    EXPECT_EQ(t32.naturalRegs, 48u);
    EXPECT_EQ(t32.sharedMemBytes, 2304u);
    EXPECT_EQ(t32.blockSize, 64u);
    // Fig. 9: 128x128's curReg is 127.
    EXPECT_EQ(tileByName(128, 128).naturalRegs, 127u);
}

TEST(TileConfig, DensityGrowsWithTileSize)
{
    // Fig. 6: bigger sub-matrices have a higher FFMA share.
    const double d32 = baseInstMix(tileByName(32, 32)).density();
    const double d64 = baseInstMix(tileByName(64, 64)).density();
    const double d128 = baseInstMix(tileByName(128, 64)).density();
    EXPECT_LT(d32, d128);
    EXPECT_LE(d64, d128 + 1e-12);
}

TEST(TileConfig, BytesPerFlopFallsWithTileSize)
{
    EXPECT_GT(bytesPerFlop(tileByName(32, 32)),
              bytesPerFlop(tileByName(64, 64)));
    EXPECT_GT(bytesPerFlop(tileByName(64, 64)),
              bytesPerFlop(tileByName(128, 128)));
}

// --------------------------------------------------------- occupancy

TEST(Occupancy, TableIVK20Cublas)
{
    // K20 + 64x64 @ 79 regs: 3 CTAs/SM by registers -> 39 blocks;
    // 5 CTAs/SM by shared memory -> 65 blocks; min is 39.
    const Occupancy o = occupancy(k20c(), tileByName(64, 64));
    EXPECT_EQ(o.byRegisters, 3u);
    EXPECT_EQ(o.bySharedMem, 5u);
    EXPECT_EQ(o.ctasPerSm, 3u);
    EXPECT_EQ(o.maxBlocks(k20c()), 39u);
    EXPECT_EQ(o.byRegisters * 13, 39u);
    EXPECT_EQ(o.bySharedMem * 13, 65u);
    EXPECT_EQ(o.limit, OccLimit::Registers);
}

TEST(Occupancy, TableIVTx1Cublas)
{
    // TX1 + 128x64 @ 120 regs: 4/SM by registers -> 8 blocks;
    // 7/SM by shared memory -> 14 blocks (Table IV's min(14,8)=8).
    const Occupancy o = occupancy(jetsonTx1(), tileByName(128, 64));
    EXPECT_EQ(o.byRegisters * 2, 8u);
    EXPECT_EQ(o.bySharedMem * 2, 14u);
    EXPECT_EQ(o.maxBlocks(jetsonTx1()), 8u);
}

TEST(Occupancy, TableIVTx1Cudnn)
{
    // TX1 + 32x32 @ 48 regs: register bound ~21/SM (paper: 40 total),
    // shared-memory bound 42/SM (paper: 84 total).
    const Occupancy o = occupancy(jetsonTx1(), tileByName(32, 32));
    EXPECT_EQ(o.bySharedMem * 2, 84u);
    EXPECT_NEAR(double(o.byRegisters * 2), 40.0, 2.0);
    // The hardware CTA-slot limit (32/SM) also binds here.
    EXPECT_LE(o.ctasPerSm, 32u);
}

TEST(Occupancy, ReducedRegistersRaiseTlp)
{
    // Fig. 9: cutting registers per thread increases TLP. The 64x64
    // tile has shared-memory headroom on K20 (5 CTAs), so the
    // register bound is what moves.
    const GpuSpec k = k20c();
    const TileConfig tile = tileByName(64, 64);
    const Occupancy full = occupancy(k, tile, 79);  // 3 CTAs/SM
    const Occupancy half = occupancy(k, tile, 64);  // 4 CTAs/SM
    const Occupancy min_r = occupancy(k, tile, 51); // 5 CTAs/SM
    EXPECT_LT(full.ctasPerSm, half.ctasPerSm);
    EXPECT_LT(half.ctasPerSm, min_r.ctasPerSm);
}

TEST(Occupancy, ThreadsAndSlotsLimitsApply)
{
    // A tiny-register kernel is eventually bound by threads or slots.
    const Occupancy o = occupancy(titanX(), tileByName(32, 32), 16);
    EXPECT_LE(o.ctasPerSm, titanX().maxCtasPerSM);
    EXPECT_LE(o.ctasPerSm * 64, titanX().maxThreadsPerSM);
}

// ------------------------------------------------------- SgemmModel

TEST(SgemmModel, GridSizeEq4)
{
    const SgemmModel m(k20c(), {tileByName(64, 64), 0});
    // AlexNet CONV2 per-group GEMM on K20: ceil(128/64)*ceil(729/64)
    // = 2 * 12 = 24 (Table IV).
    EXPECT_EQ(m.gridSize({128, 729, 1200}), 24u);
    // CONV5: 2 * 3 = 6.
    EXPECT_EQ(m.gridSize({128, 169, 1728}), 6u);
}

TEST(SgemmModel, GridSizeTx1Cudnn)
{
    const SgemmModel m(jetsonTx1(), {tileByName(32, 32), 0});
    // Table IV: CONV2 grid 92, CONV5 grid 24 on TX1/cuDNN.
    EXPECT_EQ(m.gridSize({128, 729, 1200}), 92u);
    EXPECT_EQ(m.gridSize({128, 169, 1728}), 24u);
}

TEST(SgemmModel, TableVUtilK20)
{
    // Table V row "K20": per-layer Util of AlexNet, batch 1, with the
    // cuBLAS 64x64 kernel (maxBlocks 39).
    const SgemmModel m(k20c(), {tileByName(64, 64), 0});
    const NetDescriptor net = alexNet();
    const double expected[5] = {0.82, 0.62, 0.46, 0.23, 0.15};
    for (int i = 0; i < 5; ++i) {
        const double u = m.util(net.convs[i].gemmShape(1));
        EXPECT_NEAR(u, expected[i], 0.02)
            << net.convs[i].name << " Util mismatch";
    }
}

TEST(SgemmModel, UtilIsOneWhenGridMultipleOfMaxBlocks)
{
    const SgemmModel m(k20c(), {tileByName(64, 64), 0});
    // grid = 39 exactly: 39/39 = 1.
    EXPECT_NEAR(m.util({64 * 39, 64, 512}), 1.0, 1e-12);
}

TEST(SgemmModel, RecPenalizesPadding)
{
    const SgemmModel m(k20c(), {tileByName(64, 64), 0});
    EXPECT_NEAR(m.rEC({64, 64, 100}), 1.0, 1e-12);
    EXPECT_NEAR(m.rEC({65, 64, 100}), 65.0 / 128.0, 1e-9);
    EXPECT_NEAR(m.rEC({128, 169, 100}), 169.0 / 192.0, 1e-9);
}

TEST(SgemmModel, NInvocationsEq8)
{
    const SgemmModel m(k20c(), {tileByName(64, 64), 0});
    // grid 24, TLP 3, 13 SMs: one wave.
    EXPECT_EQ(m.nInvocations({128, 729, 1200}), 1u);
    // Large batched grid needs several waves.
    EXPECT_GT(m.nInvocations({128, 729 * 128, 1200}), 1u);
}

TEST(SgemmModel, SpillingToSpareSharedMemoryFirst)
{
    // K20 + 64x64: shared-memory bound is 5 CTAs but register bound
    // is 3, so there is spare shared memory for spilled registers.
    const SgemmModel m(k20c(), {tileByName(64, 64), 64});
    EXPECT_EQ(m.spill().spilledRegs, 79u - 64u);
    EXPECT_GT(m.spill().toSharedMem, 0u);
    EXPECT_EQ(m.spill().toSharedMem + m.spill().toGlobal,
              m.spill().spilledRegs);
}

TEST(SgemmModel, SpillCostGrowsWithSpilledRegisters)
{
    const GpuSpec k = k20c();
    const TileConfig tile = tileByName(128, 128);
    const SgemmModel none(k, {tile, 127});
    const SgemmModel some(k, {tile, 96});
    const SgemmModel lots(k, {tile, 48});
    EXPECT_DOUBLE_EQ(none.spill().cost(), 0.0);
    EXPECT_LT(some.spill().cost(), lots.spill().cost());
}

TEST(SgemmModel, SpillLowersDensity)
{
    const GpuSpec k = k20c();
    const TileConfig tile = tileByName(128, 128);
    const SgemmModel none(k, {tile, 127});
    const SgemmModel lots(k, {tile, 40});
    EXPECT_GT(none.density(), lots.density());
}

TEST(SgemmModel, TimeScalesWithWork)
{
    const SgemmModel m(titanX(), {tileByName(128, 64), 0});
    const double t1 = m.kernelTime({128, 729, 1200});
    const double t128 = m.kernelTime({128, 729 * 128, 1200});
    // Batched work grows the time, but sub-linearly: the small grid
    // of the batch-1 GEMM underutilizes the GPU (this is exactly the
    // Fig. 4 throughput gap between batching and non-batching).
    EXPECT_GT(t128, t1 * 10);
    EXPECT_LT(t128, t1 * 128);
}

TEST(SgemmModel, MoreSmsNeverSlower)
{
    const SgemmModel m(k20c(), {tileByName(64, 64), 0});
    const GemmShape g{384, 169 * 16, 2304};
    EXPECT_LE(m.kernelTime(g, 13), m.kernelTime(g, 6) + 1e-12);
}

TEST(SgemmModel, OptSmTimeEqualsFullGpuTime)
{
    // The Eq. 11 promise: running on optSM SMs costs no extra
    // invocations — "nearly the same performance with half the SM
    // computing resources" (Fig. 7). Packing trades a little
    // per-CTA concurrency for far fewer SMs, so the time stays
    // within a small factor, not 6.5x as the SM ratio would suggest.
    const SgemmModel m(k20c(), {tileByName(64, 64), 0});
    const GemmShape g{128, 169, 1728}; // grid 6
    // 6 CTAs, TLP 3 -> optSM = 2.
    EXPECT_EQ(m.nInvocations(g, 3, 2), m.nInvocations(g, 3, 13));
    const double t_full = m.kernelTime(g, 13);
    const double t_opt = m.kernelTime(g, 2);
    EXPECT_LE(t_opt, t_full * 2.0);
    EXPECT_GE(t_opt, t_full);
}

TEST(SgemmModel, SmallTileBandwidthBoundOnTx1)
{
    // cuDNN's 32x32 tile is traffic-heavy; on TX1's 25.6 GB/s a big
    // batched GEMM must be bandwidth-bound: halving compute density
    // would not change the time.
    const GpuSpec tx1 = jetsonTx1();
    const SgemmModel m(tx1, {tileByName(32, 32), 0});
    const GemmShape g{128, 729 * 128, 1200};
    const double t = m.kernelTime(g);
    const double traffic = double(m.gridSize(g)) * m.ctaWorkFlops(g) *
                           m.trafficBytesPerFlop();
    EXPECT_NEAR(t, traffic / tx1.bandwidthBytes(),
                t * 0.05 + SgemmModel::launchOverheadS);
}

TEST(SgemmModel, CpEDefinition)
{
    const SgemmModel m(k20c(), {tileByName(64, 64), 0});
    const GemmShape g{128, 729, 1200};
    // At time = flops/peak, cpE == 1.
    const double t = g.flops() / k20c().peakFlops();
    EXPECT_NEAR(m.cpE(g, t), 1.0, 1e-9);
}

TEST(SgemmModel, KernelConfigStr)
{
    KernelConfig cfg{tileByName(64, 64), 0};
    EXPECT_EQ(cfg.str(), "64x64@r79");
    cfg.regsPerThread = 50;
    EXPECT_EQ(cfg.str(), "64x64@r50");
}

// Property sweep: every (gpu, tile) pair yields a consistent model.
class GpuTileSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(GpuTileSweep, ModelInvariants)
{
    const auto [gi, ti] = GetParam();
    const GpuSpec gpu = allGpus()[gi];
    const TileConfig tile = tileCatalogue()[ti];
    const SgemmModel m(gpu, {tile, 0});

    EXPECT_GE(m.occ().ctasPerSm, 1u);
    EXPECT_GT(m.density(), 0.0);
    EXPECT_LE(m.density(), 1.0);
    EXPECT_GT(m.timingDensity(), 0.0);
    EXPECT_LE(m.timingDensity(), m.density() + 1e-12);

    const GemmShape g{384, 13 * 13 * 8, 2304};
    EXPECT_GE(m.util(g), 0.0);
    EXPECT_LE(m.util(g), 1.0);
    EXPECT_GT(m.rEC(g), 0.0);
    EXPECT_LE(m.rEC(g), 1.0);
    EXPECT_GT(m.kernelTime(g), 0.0);
    EXPECT_GE(m.nInvocations(g), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GpuTileSweep,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 6)));

// ------------------------------------------------------ memory model

TEST(MemoryModel, WeightBytes)
{
    // AlexNet: ~61M params * 4 B = ~244 MB.
    EXPECT_NEAR(weightBytes(alexNet()), 244e6, 10e6);
}

TEST(MemoryModel, ActivationsScaleWithBatch)
{
    const NetDescriptor net = vgg16();
    EXPECT_NEAR(activationBytes(net, 32), 32 * activationBytes(net, 1),
                1.0);
    // VGG: ~55 MB of activations per image.
    EXPECT_NEAR(activationBytes(net, 1), 55e6, 8e6);
}

TEST(MemoryModel, ColBufferSizes)
{
    const NetDescriptor net = vgg16();
    // Largest single-image im2col: conv1_2, 576 x 224^2 floats.
    EXPECT_NEAR(maxSingleImageColBytes(net), 576.0 * 224 * 224 * 4,
                1e3);
    EXPECT_NEAR(maxBatchedColBytes(net, 32),
                32 * maxSingleImageColBytes(net), 1.0);
}

TEST(MemoryModel, CappedSumRespectsCap)
{
    const NetDescriptor net = googleNet();
    const double cap = 40.0 * 1024 * 1024;
    const double total = sumCappedBatchedColBytes(net, 64, cap);
    EXPECT_LE(total, cap * double(net.convs.size()));
    EXPECT_GT(total, cap); // several layers hit the cap
}

TEST(MemoryModel, FitsDetectsOverflow)
{
    const GpuSpec tx1 = jetsonTx1();
    MemoryFootprint fp;
    fp.weightBytes = usableBytes(tx1) + 1.0;
    EXPECT_FALSE(fits(tx1, fp));
    fp.weightBytes = usableBytes(tx1) * 0.5;
    EXPECT_TRUE(fits(tx1, fp));
}

} // namespace
} // namespace pcnn
