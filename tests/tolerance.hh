/**
 * @file
 * Shared numerical-tolerance helpers for tests that compare an
 * approximate kernel (winograd, fused epilogues) against a reference
 * computation. Two views of closeness are provided:
 *
 *  - relative error with an absolute floor (so values near zero are
 *    judged on absolute error instead of exploding the ratio), and
 *  - ULP distance on the monotonic integer mapping of the float
 *    lattice (for "almost bitwise" contracts).
 *
 * Every test states its budget explicitly at the call site; on
 * failure the helpers name the worst offending element with both
 * values, its relative error, and its ULP distance, so a regression
 * report is actionable without rerunning under a debugger.
 */

#ifndef PCNN_TESTS_TOLERANCE_HH
#define PCNN_TESTS_TOLERANCE_HH

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace pcnn {

/**
 * Distance between two floats in representable steps. Uses the
 * sign-magnitude-to-offset trick so the distance is monotonic across
 * zero (+0 and -0 are 0 apart). NaN on either side is "infinitely"
 * far.
 */
inline std::uint64_t
ulpDistance(float a, float b)
{
    if (std::isnan(a) || std::isnan(b))
        return std::numeric_limits<std::uint64_t>::max();
    const auto ordered = [](float f) {
        std::int32_t i;
        std::memcpy(&i, &f, sizeof i);
        return i >= 0 ? std::int64_t(i)
                      : std::int64_t(std::numeric_limits<
                                         std::int32_t>::min()) -
                            std::int64_t(i);
    };
    const std::int64_t d = ordered(a) - ordered(b);
    return std::uint64_t(d < 0 ? -d : d);
}

/** |want - got| / max(|want|, abs_floor). */
inline double
relError(float want, float got, double abs_floor)
{
    const double denom =
        std::max(double(std::fabs(want)), abs_floor);
    return std::fabs(double(want) - double(got)) / denom;
}

/**
 * Compare two float spans under a relative-error budget. Returns a
 * gtest assertion result naming the worst element on failure.
 *
 * @param rel_budget  maximum allowed relError per element
 * @param abs_floor   denominator floor: below this magnitude the
 *                    check degrades to absolute error / abs_floor
 */
inline ::testing::AssertionResult
allClose(const float *want, const float *got, std::size_t n,
         double rel_budget, double abs_floor = 1e-5)
{
    double worst_rel = 0.0;
    std::size_t worst = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double rel = relError(want[i], got[i], abs_floor);
        if (rel > worst_rel) {
            worst_rel = rel;
            worst = i;
        }
    }
    if (worst_rel <= rel_budget)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "worst element [" << worst << "]: want "
           << want[worst] << ", got " << got[worst] << ", rel err "
           << worst_rel << " > budget " << rel_budget << " ("
           << ulpDistance(want[worst], got[worst]) << " ulps)";
}

/** Container convenience: sizes must match, then element budget. */
template <class A, class B>
::testing::AssertionResult
allClose(const A &want, const B &got, double rel_budget,
         double abs_floor = 1e-5)
{
    if (want.size() != got.size())
        return ::testing::AssertionFailure()
               << "size mismatch: want " << want.size() << ", got "
               << got.size();
    return allClose(want.data(), got.data(), want.size(),
                    rel_budget, abs_floor);
}

/** Compare two float spans under a per-element ULP budget. */
inline ::testing::AssertionResult
allCloseUlp(const float *want, const float *got, std::size_t n,
            std::uint64_t ulp_budget)
{
    std::uint64_t worst_ulp = 0;
    std::size_t worst = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t u = ulpDistance(want[i], got[i]);
        if (u > worst_ulp) {
            worst_ulp = u;
            worst = i;
        }
    }
    if (worst_ulp <= ulp_budget)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "worst element [" << worst << "]: want "
           << want[worst] << ", got " << got[worst] << ", "
           << worst_ulp << " ulps > budget " << ulp_budget;
}

} // namespace pcnn

#endif // PCNN_TESTS_TOLERANCE_HH
