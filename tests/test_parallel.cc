/**
 * @file
 * Tests for the deterministic CPU thread pool and the guarantees the
 * substrate builds on it: the static parallelFor partition, the
 * packed SGEMM against a reference triple loop in all four transpose
 * cases, and bitwise-identical network forward/backward/training
 * results across thread counts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hh"
#include "common/random.hh"
#include "data/synthetic.hh"
#include "gpu/gpu_spec.hh"
#include "nn/model_zoo.hh"
#include "pcnn/offline/kernel_tuner.hh"
#include "tensor/tensor_ops.hh"
#include "train/trainer.hh"

namespace pcnn {
namespace {

/** Restore the PCNN_THREADS / hardware default on scope exit. */
struct ThreadCountGuard
{
    explicit ThreadCountGuard(std::size_t n) { setThreadCount(n); }
    ~ThreadCountGuard() { setThreadCount(0); }
};

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    ThreadCountGuard guard(4);
    const std::size_t n = 101;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h.store(0);
    parallelFor(n, [&](std::size_t b, std::size_t e, std::size_t tid) {
        EXPECT_LT(tid, threadCount());
        for (std::size_t i = b; i < e; ++i)
            hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, PartitionIsTheStaticFormula)
{
    ThreadCountGuard guard(3);
    const std::size_t n = 10;
    std::vector<std::size_t> begins(threadCount(), n + 1);
    std::vector<std::size_t> ends(threadCount(), n + 1);
    parallelFor(n, [&](std::size_t b, std::size_t e, std::size_t tid) {
        begins[tid] = b;
        ends[tid] = e;
    });
    const std::size_t T = threadCount();
    for (std::size_t t = 0; t < T; ++t) {
        EXPECT_EQ(begins[t], n * t / T);
        EXPECT_EQ(ends[t], n * (t + 1) / T);
    }
}

TEST(ParallelFor, NestedCallsRunInline)
{
    ThreadCountGuard guard(4);
    EXPECT_FALSE(inParallelRegion());
    std::atomic<int> innerChunks{0};
    parallelFor(4, [&](std::size_t b, std::size_t e, std::size_t tid) {
        EXPECT_TRUE(inParallelRegion());
        EXPECT_EQ(currentLane(), tid);
        for (std::size_t i = b; i < e; ++i) {
            // A nested region must execute serially on this lane as
            // one [0, n) chunk with the caller's lane id.
            parallelFor(7, [&](std::size_t ib, std::size_t ie,
                               std::size_t itid) {
                EXPECT_EQ(ib, 0u);
                EXPECT_EQ(ie, 7u);
                EXPECT_EQ(itid, tid);
                innerChunks.fetch_add(1);
            });
        }
    });
    EXPECT_FALSE(inParallelRegion());
    EXPECT_EQ(innerChunks.load(), 4);
}

TEST(ParallelFor, TrivialSizes)
{
    ThreadCountGuard guard(4);
    int calls = 0;
    parallelFor(0, [&](std::size_t, std::size_t, std::size_t) {
        ++calls;
    });
    EXPECT_EQ(calls, 0);
    parallelFor(1, [&](std::size_t b, std::size_t e, std::size_t tid) {
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 1u);
        EXPECT_EQ(tid, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, ExceptionsPropagateToCaller)
{
    ThreadCountGuard guard(4);
    EXPECT_THROW(
        parallelFor(64,
                    [&](std::size_t b, std::size_t, std::size_t) {
                        if (b == 0)
                            throw std::runtime_error("chunk failure");
                    }),
        std::runtime_error);
    // The pool must stay usable after a throwing region.
    std::atomic<int> sum{0};
    parallelFor(8, [&](std::size_t b, std::size_t e, std::size_t) {
        sum.fetch_add(int(e - b));
    });
    EXPECT_EQ(sum.load(), 8);
}

TEST(ParallelFor, SetThreadCountOverridesAndRestores)
{
    setThreadCount(3);
    EXPECT_EQ(threadCount(), 3u);
    setThreadCount(0);
    EXPECT_GE(threadCount(), 1u);
}

/** Reference SGEMM: straight triple loop over op(A), op(B). */
void
refGemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
        std::size_t k, const float *a, const float *b, float *c,
        float beta)
{
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < k; ++p) {
                const float av = trans_a ? a[p * m + i] : a[i * k + p];
                const float bv = trans_b ? b[j * k + p] : b[p * n + j];
                acc += double(av) * double(bv);
            }
            c[i * n + j] = float(acc) + beta * c[i * n + j];
        }
    }
}

TEST(Sgemm, AllTransposeCasesMatchReference)
{
    ThreadCountGuard guard(3);
    Rng rng(41);
    // Shapes straddle the 8x8 register blocking: exact multiples,
    // sub-block, and ragged edges in every dimension.
    const GemmShape shapes[] = {
        {8, 8, 8},   {16, 24, 32}, {5, 3, 2},    {13, 11, 7},
        {17, 64, 33}, {64, 9, 40},  {1, 30, 12},  {30, 1, 12},
    };
    for (const GemmShape &s : shapes) {
        for (int ta = 0; ta < 2; ++ta) {
            for (int tb = 0; tb < 2; ++tb) {
                Tensor a(1, 1, ta ? s.k : s.m, ta ? s.m : s.k);
                Tensor b(1, 1, tb ? s.n : s.k, tb ? s.k : s.n);
                a.fillGaussian(rng, 0.0f, 1.0f);
                b.fillGaussian(rng, 0.0f, 1.0f);
                Tensor c(1, 1, s.m, s.n);
                c.fillGaussian(rng, 0.0f, 1.0f);
                std::vector<float> want(c.data(),
                                        c.data() + c.size());
                refGemm(ta != 0, tb != 0, s.m, s.n, s.k, a.data(),
                        b.data(), want.data(), 0.5f);
                sgemm(ta != 0, tb != 0, s.m, s.n, s.k, a.data(),
                      b.data(), c.data(), 0.5f);
                for (std::size_t i = 0; i < c.size(); ++i)
                    EXPECT_NEAR(c[i], want[i], 1e-3)
                        << "m=" << s.m << " n=" << s.n
                        << " k=" << s.k << " ta=" << ta
                        << " tb=" << tb << " i=" << i;
            }
        }
    }
}

TEST(Sgemm, BitwiseIdenticalAcrossThreadCounts)
{
    Rng rng(42);
    const GemmShape shapes[] = {{96, 3025, 363}, {37, 53, 29}};
    for (const GemmShape &s : shapes) {
        for (int ta = 0; ta < 2; ++ta) {
            for (int tb = 0; tb < 2; ++tb) {
                Tensor a(1, 1, ta ? s.k : s.m, ta ? s.m : s.k);
                Tensor b(1, 1, tb ? s.n : s.k, tb ? s.k : s.n);
                a.fillGaussian(rng, 0.0f, 1.0f);
                b.fillGaussian(rng, 0.0f, 1.0f);
                Tensor c1(1, 1, s.m, s.n);
                Tensor c8(1, 1, s.m, s.n);
                {
                    ThreadCountGuard guard(1);
                    sgemm(ta != 0, tb != 0, s.m, s.n, s.k, a.data(),
                          b.data(), c1.data());
                }
                {
                    ThreadCountGuard guard(8);
                    sgemm(ta != 0, tb != 0, s.m, s.n, s.k, a.data(),
                          b.data(), c8.data());
                }
                EXPECT_EQ(std::memcmp(c1.data(), c8.data(),
                                      c1.size() * sizeof(float)),
                          0)
                    << "m=" << s.m << " n=" << s.n << " k=" << s.k
                    << " ta=" << ta << " tb=" << tb;
            }
        }
    }
}

TEST(Im2col, ChannelOffsetReadsTheChannelWindow)
{
    ThreadCountGuard guard(2);
    Rng rng(43);
    Tensor x(2, 4, 6, 6); // wider than the conv's channel window
    x.fillGaussian(rng, 0.0f, 1.0f);
    ConvGeom g{2, 6, 6, 3, 1, 1};

    // Reference: copy channels [2, 4) of item 1 into a slim tensor.
    Tensor slim(1, 2, 6, 6);
    for (std::size_t c = 0; c < 2; ++c)
        for (std::size_t i = 0; i < 36; ++i)
            slim.data()[c * 36 + i] =
                x.data()[(1 * 4 + 2 + c) * 36 + i];

    std::vector<float> want, got;
    im2col(slim, 0, g, want);
    im2col(x, 1, g, got, 2);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          want.size() * sizeof(float)),
              0);
}

/** Collect a bitwise snapshot of every parameter value. */
std::vector<float>
snapshotParams(Network &net)
{
    std::vector<float> out;
    for (Param *p : net.params())
        out.insert(out.end(), p->value.data(),
                   p->value.data() + p->value.size());
    return out;
}

TEST(Determinism, ForwardBackwardBitwiseAcrossThreadCounts)
{
    Rng rngInit(44);
    Network net = makeMiniNet(MiniSize::Small, rngInit);
    Rng rngData(45);
    // Batch 16 >= any tested lane count, so the conv layers take the
    // batch-parallel path rather than the serial fallback.
    Tensor x(16, 1, 16, 16);
    x.fillGaussian(rngData, 0.0f, 1.0f);

    auto run = [&](std::size_t threads, Tensor &y, Tensor &dx,
                   std::vector<float> &grads) {
        ThreadCountGuard guard(threads);
        net.zeroGrads();
        y = net.forward(x, true);
        Tensor dlogits(y.shape());
        Rng rngGrad(46);
        dlogits.fillGaussian(rngGrad, 0.0f, 1.0f);
        dx = net.backward(dlogits);
        grads.clear();
        for (Param *p : net.params())
            grads.insert(grads.end(), p->grad.data(),
                         p->grad.data() + p->grad.size());
    };

    Tensor y1, dx1, y8, dx8;
    std::vector<float> g1, g8;
    run(1, y1, dx1, g1);
    run(8, y8, dx8, g8);

    ASSERT_EQ(y1.size(), y8.size());
    EXPECT_EQ(std::memcmp(y1.data(), y8.data(),
                          y1.size() * sizeof(float)),
              0)
        << "forward logits differ across thread counts";
    ASSERT_EQ(dx1.size(), dx8.size());
    EXPECT_EQ(std::memcmp(dx1.data(), dx8.data(),
                          dx1.size() * sizeof(float)),
              0)
        << "input gradients differ across thread counts";
    ASSERT_EQ(g1.size(), g8.size());
    EXPECT_EQ(std::memcmp(g1.data(), g8.data(),
                          g1.size() * sizeof(float)),
              0)
        << "parameter gradients differ across thread counts";
}

TEST(Determinism, TrainerFitBitwiseAcrossThreadCounts)
{
    TrainConfig tc;
    tc.epochs = 2;
    tc.batchSize = 16;

    auto run = [&](std::size_t threads,
                   std::vector<EpochStats> &history) {
        ThreadCountGuard guard(threads);
        // Rebuild task, data, and network from fixed seeds so the two
        // runs differ in nothing but the thread count (fit shuffles
        // the dataset in place, so it cannot be shared between runs).
        SyntheticTaskConfig cfg;
        cfg.difficulty = 0.5;
        cfg.seed = 47;
        SyntheticTask task(cfg);
        Dataset train_set = task.generate(128);
        Rng rng(48);
        Network net = makeMiniNet(MiniSize::Small, rng);
        Trainer trainer(net, tc);
        history = trainer.fit(train_set);
        return snapshotParams(net);
    };

    std::vector<EpochStats> h1, h8;
    const std::vector<float> p1 = run(1, h1);
    const std::vector<float> p8 = run(8, h8);

    ASSERT_EQ(p1.size(), p8.size());
    EXPECT_EQ(std::memcmp(p1.data(), p8.data(),
                          p1.size() * sizeof(float)),
              0)
        << "trained parameters differ across thread counts";
    ASSERT_EQ(h1.size(), h8.size());
    for (std::size_t e = 0; e < h1.size(); ++e) {
        EXPECT_EQ(h1[e].trainLoss, h8[e].trainLoss) << "epoch " << e;
        EXPECT_EQ(h1[e].trainAccuracy, h8[e].trainAccuracy)
            << "epoch " << e;
    }
}

TEST(Determinism, KernelTunerIdenticalAcrossThreadCounts)
{
    const KernelTuner tuner(k20c());
    const GemmShape shapes[] = {{128, 729, 1200}, {96, 3025, 363}};
    for (const GemmShape &g : shapes) {
        TunedKernel t1, t8;
        {
            ThreadCountGuard guard(1);
            t1 = tuner.tune(g);
        }
        {
            ThreadCountGuard guard(8);
            t8 = tuner.tune(g);
        }
        EXPECT_EQ(t1.config.tile.m, t8.config.tile.m);
        EXPECT_EQ(t1.config.tile.n, t8.config.tile.n);
        EXPECT_EQ(t1.config.tile.blockSize, t8.config.tile.blockSize);
        EXPECT_EQ(t1.config.regsPerThread, t8.config.regsPerThread);
        EXPECT_EQ(t1.optTLP, t8.optTLP);
        EXPECT_EQ(t1.skernel, t8.skernel);
        EXPECT_EQ(t1.predictedTimeS, t8.predictedTimeS);
    }
}

// ------------------------------------------- ScopedLaneLimit (§5f)

TEST(ScopedLaneLimit, CapsThreadCountAndNestsTighterWins)
{
    ThreadCountGuard guard(4);
    EXPECT_EQ(threadCount(), 4u);
    {
        ScopedLaneLimit two(2);
        EXPECT_EQ(threadCount(), 2u);
        {
            ScopedLaneLimit three(3); // looser than 2: no effect
            EXPECT_EQ(threadCount(), 2u);
            ScopedLaneLimit one(1);
            EXPECT_EQ(threadCount(), 1u);
        }
        EXPECT_EQ(threadCount(), 2u);
    }
    EXPECT_EQ(threadCount(), 4u);
}

TEST(ScopedLaneLimit, ZeroMeansNoCap)
{
    ThreadCountGuard guard(3);
    ScopedLaneLimit none(0);
    EXPECT_EQ(threadCount(), 3u);
}

TEST(ScopedLaneLimit, LimitOneRunsInline)
{
    ThreadCountGuard guard(4);
    ScopedLaneLimit one(1);
    std::size_t chunks = 0;
    parallelFor(64, [&](std::size_t b, std::size_t e,
                        std::size_t tid) {
        // One [0, n) chunk on the calling thread: no pool traffic.
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 64u);
        EXPECT_EQ(tid, 0u);
        ++chunks;
    });
    EXPECT_EQ(chunks, 1u);
}

TEST(ScopedLaneLimit, PartitionFollowsTheCappedCount)
{
    ThreadCountGuard guard(4);
    ScopedLaneLimit two(2);
    const std::size_t n = 10;
    std::vector<std::size_t> begins(threadCount(), n + 1);
    std::vector<std::size_t> ends(threadCount(), n + 1);
    parallelFor(n, [&](std::size_t b, std::size_t e,
                       std::size_t tid) {
        begins[tid] = b;
        ends[tid] = e;
    });
    const std::size_t T = 2;
    for (std::size_t t = 0; t < T; ++t) {
        EXPECT_EQ(begins[t], n * t / T);
        EXPECT_EQ(ends[t], n * (t + 1) / T);
    }
}

TEST(ScopedLaneLimit, IsThreadLocal)
{
    ThreadCountGuard guard(4);
    std::atomic<std::size_t> inThread{0};
    {
        ScopedLaneLimit one(1);
        // A concurrently running thread sees the uncapped count.
        std::thread t([&] { inThread = threadCount(); });
        t.join();
        EXPECT_EQ(threadCount(), 1u);
    }
    EXPECT_EQ(inThread.load(), 4u);
}

TEST(ScopedLaneLimit, ResultsBitwiseIdenticalUnderCap)
{
    ThreadCountGuard guard(4);
    const std::size_t m = 17, n = 23, k = 31;
    Rng rng(97);
    std::vector<float> a(m * k), b(k * n);
    for (auto &v : a)
        v = float(rng.uniform()) - 0.5f;
    for (auto &v : b)
        v = float(rng.uniform()) - 0.5f;

    std::vector<float> full(m * n, 0.0f), capped(m * n, 0.0f);
    sgemm(false, false, m, n, k, a.data(), b.data(), full.data());
    {
        ScopedLaneLimit two(2);
        sgemm(false, false, m, n, k, a.data(), b.data(),
              capped.data());
    }
    EXPECT_EQ(std::memcmp(full.data(), capped.data(),
                          full.size() * sizeof(float)),
              0)
        << "lane cap changed SGEMM bits";
}

} // namespace
} // namespace pcnn
