/**
 * @file
 * Tests for the framework extensions: DVFS model + planner, spatial
 * multi-kernel co-location, static SM allocation, compiled-plan
 * persistence, and the online requirement learner.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "gpu/dvfs.hh"
#include "gpu/sim/gpu_sim.hh"
#include "nn/model_zoo.hh"
#include "pcnn/offline/dvfs_planner.hh"
#include "pcnn/offline/plan_io.hh"
#include "pcnn/runtime/kernel_scheduler.hh"
#include "pcnn/runtime/requirement_learner.hh"

namespace pcnn {
namespace {

// ---------------------------------------------------------------- DVFS

TEST(Dvfs, LevelsAscendToNominal)
{
    const auto &ls = DvfsModel::levels();
    ASSERT_GE(ls.size(), 2u);
    for (std::size_t i = 1; i < ls.size(); ++i)
        EXPECT_GT(ls[i], ls[i - 1]);
    EXPECT_DOUBLE_EQ(ls.back(), 1.0);
}

TEST(Dvfs, ScalingLaws)
{
    const DvfsModel dvfs(k20c());
    const GpuSpec half = dvfs.at(0.5);
    const GpuSpec full = dvfs.at(1.0);
    EXPECT_NEAR(half.coreClockMHz, full.coreClockMHz * 0.5, 1e-9);
    // Dynamic energy ~ f^2, leakage ~ f, bandwidth unchanged.
    EXPECT_NEAR(half.dynEnergyPerFlopJ,
                full.dynEnergyPerFlopJ * 0.25, 1e-18);
    EXPECT_NEAR(half.smStaticPowerW, full.smStaticPowerW * 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(half.memBandwidthGBs, full.memBandwidthGBs);
    EXPECT_NEAR(half.peakFlops(), full.peakFlops() * 0.5, 1e3);
}

TEST(Dvfs, LevelForBudget)
{
    const DvfsModel dvfs(k20c());
    // 10 ms of nominal work against a 100 ms budget: 0.5 suffices
    // (20 ms <= 100 ms).
    EXPECT_DOUBLE_EQ(dvfs.levelForBudget(0.010, 0.100), 0.5);
    // Tight budget: must stay at nominal.
    EXPECT_DOUBLE_EQ(dvfs.levelForBudget(0.010, 0.011), 1.0);
}

TEST(DvfsPlanner, SlowsDownWhenSlackIsLarge)
{
    // An interactive task on the fast server GPU has huge slack; the
    // planner should pick a level below nominal and still meet T_i.
    const DvfsPlanner planner(k20c());
    const DvfsPlan p = planner.plan(alexNet(), ageDetectionApp());
    EXPECT_LT(p.level, 1.0);
    EXPECT_GE(p.slackS, 0.0);
    EXPECT_LE(p.plan.latencyS(), 0.1);
}

TEST(DvfsPlanner, StaysFastUnderTightDeadline)
{
    // 60 FPS on the mobile GPU leaves no DVFS slack.
    const DvfsPlanner planner(jetsonTx1());
    const DvfsPlan p =
        planner.plan(googleNet(), videoSurveillanceApp());
    EXPECT_DOUBLE_EQ(p.level, 1.0);
}

TEST(DvfsPlanner, SavesEnergyAtEqualSatisfaction)
{
    const GpuSpec nominal = k20c();
    const DvfsPlanner planner(nominal);
    const AppSpec app = ageDetectionApp();
    const DvfsPlan scaled = planner.plan(alexNet(), app);

    const OfflineCompiler compiler(nominal);
    const CompiledPlan fast = compiler.compile(alexNet(), app);

    const SimResult r_fast =
        RuntimeKernelScheduler(nominal).execute(fast, pcnnPolicy());
    const SimResult r_slow = RuntimeKernelScheduler(scaled.gpu)
                                 .execute(scaled.plan, pcnnPolicy());
    const UserRequirement req = inferRequirement(app);
    // Both imperceptible...
    EXPECT_LE(r_fast.timeS, req.imperceptibleS);
    EXPECT_LE(r_slow.timeS, req.imperceptibleS);
    // ...but over one request period (requests arrive at 1 Hz and
    // the GPU idles at board base power in between) the scaled
    // deployment uses less total energy: the board power is a wash,
    // while the f^2 dynamic and f static terms shrink.
    const double period = 1.0 / app.dataRateHz;
    const GpuSim idle_fast(nominal);
    const GpuSim idle_slow(scaled.gpu);
    const double e_fast =
        r_fast.energy.total() +
        idle_fast.fixedInterval(period - r_fast.timeS, 0)
            .energy.total();
    const double e_slow =
        r_slow.energy.total() +
        idle_slow.fixedInterval(period - r_slow.timeS, 0)
            .energy.total();
    EXPECT_LT(e_slow, e_fast);
}

// ----------------------------------------------------- co-location

GpuSpec
toy8()
{
    GpuSpec g = jetsonTx1();
    g.name = "Toy8";
    g.numSMs = 8;
    return g;
}

KernelDesc
simpleKernel(const std::string &name, std::size_t grid)
{
    KernelDesc k;
    k.name = name;
    k.gridSize = grid;
    k.ctaWorkFlops = 1e7;
    k.blockSize = 256;
    k.issueDensity = 0.6;
    return k;
}

TEST(Partitioned, SingleKernelMatchesPsmRun)
{
    const GpuSim sim(toy8());
    const KernelDesc k = simpleKernel("a", 8);

    LaunchConfig psm;
    psm.scheduler = SchedKind::PrioritySM;
    psm.tlpLimit = 2;
    psm.smsAllowed = 4;
    psm.powerGateIdle = true;
    const SimResult single = sim.runKernel(k, psm);

    const PartitionedResult part =
        sim.runPartitioned({{k, 0, 4, 2}}, true);
    EXPECT_NEAR(part.timeS, single.timeS, single.timeS * 0.05);
    EXPECT_EQ(part.smsPowered, 4u);
}

TEST(Partitioned, DisjointKernelsDontSlowEachOther)
{
    const GpuSim sim(toy8());
    const KernelDesc a = simpleKernel("a", 8);
    const KernelDesc b = simpleKernel("b", 8);

    const PartitionedResult together = sim.runPartitioned(
        {{a, 0, 4, 2}, {b, 4, 8, 2}}, true);
    const PartitionedResult alone =
        sim.runPartitioned({{a, 0, 4, 2}}, true);
    // Same SM budget for kernel a either way.
    EXPECT_NEAR(together.kernelTimeS[0], alone.kernelTimeS[0],
                alone.kernelTimeS[0] * 0.05);
    EXPECT_EQ(together.smsPowered, 8u);
}

TEST(Partitioned, ColocationBeatsSequentialThroughput)
{
    // The Fig. 7 promise: PSM frees SMs for other work. Running the
    // co-runner on the freed SMs finishes earlier than running the
    // two kernels back to back on the whole GPU.
    const GpuSim sim(toy8());
    const KernelDesc cnn = simpleKernel("cnn", 8);   // optSM 4 @ tlp 2
    const KernelDesc other = simpleKernel("other", 8);

    const PartitionedResult together = sim.runPartitioned(
        {{cnn, 0, 4, 2}, {other, 4, 8, 2}}, true);

    LaunchConfig whole;
    whole.scheduler = SchedKind::RoundRobin;
    whole.tlpLimit = 2;
    const SimResult seq_a = sim.runKernel(cnn, whole);
    const SimResult seq_b = sim.runKernel(other, whole);
    EXPECT_LT(together.timeS, seq_a.timeS + seq_b.timeS);
}

TEST(PartitionedDeath, OverlappingRangesPanic)
{
    const GpuSim sim(toy8());
    const KernelDesc a = simpleKernel("a", 4);
    EXPECT_DEATH(
        sim.runPartitioned({{a, 0, 4, 2}, {a, 3, 8, 2}}, true),
        "claimed by two");
}

// --------------------------------------------- static SM allocation

TEST(StaticSmAllocation, WastesEnergyVsPerLayerOptSm)
{
    // Section III.D.2: allocating the max-Util SM count to *all*
    // layers leaves low-Util layers overprovisioned; per-layer optSM
    // (P-CNN) uses less energy at similar latency.
    const GpuSpec gpu = k20c();
    const OfflineCompiler compiler(gpu);
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    const RuntimeKernelScheduler rt(gpu);

    std::size_t max_opt_sm = 0;
    for (const LayerSchedule &ls : plan.layers)
        max_opt_sm = std::max(max_opt_sm, ls.kernel.optSM);

    ExecPolicy spatial_static = pcnnPolicy();
    spatial_static.fixedSmAllocation = max_opt_sm;

    const SimResult per_layer = rt.execute(plan, pcnnPolicy());
    const SimResult fixed = rt.execute(plan, spatial_static);
    EXPECT_LT(per_layer.energy.total(), fixed.energy.total());
    EXPECT_LT(per_layer.timeS, fixed.timeS * 1.5);
}

// ------------------------------------------------------------ plan IO

TEST(PlanIo, RoundTrip)
{
    const OfflineCompiler compiler(jetsonTx1());
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 4);
    const auto bytes = serializePlan(plan);
    const auto loaded = deserializePlan(bytes);
    ASSERT_TRUE(loaded.has_value());

    EXPECT_EQ(loaded->netName, plan.netName);
    EXPECT_EQ(loaded->gpuName, plan.gpuName);
    EXPECT_EQ(loaded->batch, plan.batch);
    ASSERT_EQ(loaded->layers.size(), plan.layers.size());
    for (std::size_t i = 0; i < plan.layers.size(); ++i) {
        EXPECT_EQ(loaded->layers[i].kernel.config.str(),
                  plan.layers[i].kernel.config.str());
        EXPECT_EQ(loaded->layers[i].kernel.optSM,
                  plan.layers[i].kernel.optSM);
        EXPECT_EQ(loaded->layers[i].layer.name,
                  plan.layers[i].layer.name);
        EXPECT_NEAR(loaded->layers[i].timeS, plan.layers[i].timeS,
                    1e-12);
    }
    EXPECT_NEAR(loaded->latencyS(), plan.latencyS(), 1e-12);
}

TEST(PlanIo, LoadedPlanExecutes)
{
    const GpuSpec gpu = k20c();
    const OfflineCompiler compiler(gpu);
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 2);
    const auto loaded = deserializePlan(serializePlan(plan));
    ASSERT_TRUE(loaded.has_value());

    const RuntimeKernelScheduler rt(gpu);
    const SimResult a = rt.execute(plan, pcnnPolicy());
    const SimResult b = rt.execute(*loaded, pcnnPolicy());
    EXPECT_NEAR(a.timeS, b.timeS, 1e-12);
    EXPECT_NEAR(a.energy.total(), b.energy.total(), 1e-12);
}

TEST(PlanIo, RejectsGarbage)
{
    EXPECT_FALSE(deserializePlan({}).has_value());
    EXPECT_FALSE(
        deserializePlan({1, 2, 3, 4, 5, 6, 7, 8, 9}).has_value());
    const OfflineCompiler compiler(k20c());
    auto bytes =
        serializePlan(compiler.compileAtBatch(alexNet(), 1));
    bytes.resize(bytes.size() - 7); // truncate
    EXPECT_FALSE(deserializePlan(bytes).has_value());
}

TEST(PlanIo, RejectsHostileStringLength)
{
    // Magic followed by a netName length field of ~2^64: the reader
    // must treat it as truncation, not wrap `pos + len` and read out
    // of bounds.
    std::vector<std::uint8_t> bytes = {'P', 'C', 'N', 'N',
                                       'P', 'L', 'N', '1'};
    for (int i = 0; i < 8; ++i)
        bytes.push_back(0xFF);
    EXPECT_FALSE(deserializePlan(bytes).has_value());
}

TEST(PlanIo, RejectsOutOfRangeFields)
{
    const OfflineCompiler compiler(k20c());
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);

    auto mutated = [&](auto &&mutate) {
        CompiledPlan bad = plan;
        mutate(bad);
        return deserializePlan(serializePlan(bad));
    };

    EXPECT_FALSE(mutated([](CompiledPlan &p) { p.batch = 0; }));
    EXPECT_FALSE(mutated([](CompiledPlan &p) {
        p.time.convS = -1.0;
    }));
    EXPECT_FALSE(mutated([](CompiledPlan &p) {
        p.layers[0].kernel.optTLP = 0;
    }));
    EXPECT_FALSE(mutated([](CompiledPlan &p) {
        p.layers[0].kernel.optSM = 0;
    }));
    EXPECT_FALSE(mutated([](CompiledPlan &p) {
        p.layers[0].layer.kernel = 0;
    }));
    EXPECT_FALSE(mutated([](CompiledPlan &p) {
        // Kernel no longer fits in the padded input.
        p.layers[0].layer.kernel = p.layers[0].layer.inH +
                                   2 * p.layers[0].layer.pad + 1;
    }));
    EXPECT_FALSE(mutated([](CompiledPlan &p) {
        p.layers[0].layer.groups = 7; // does not divide channels
    }));
}

TEST(PlanIo, FileRoundTrip)
{
    const OfflineCompiler compiler(gtx970m());
    const CompiledPlan plan = compiler.compileAtBatch(vgg16(), 2);
    const std::string path = "/tmp/pcnn_plan_test.bin";
    ASSERT_TRUE(savePlan(plan, path));
    const auto loaded = loadPlan(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->layers.size(), plan.layers.size());
    std::remove(path.c_str());
}

// -------------------------------------------------- requirement learner

TEST(RequirementLearner, ConvergesTowardTrueThreshold)
{
    // Hidden truth: this user's T_i is 0.4 s (they are patient).
    const double true_ti = 0.4;
    RequirementLearner learner(inferRequirement(ageDetectionApp()));
    Rng rng(30);

    for (int i = 0; i < 200; ++i) {
        const double latency = rng.uniform(0.01, 1.0);
        learner.observe(latency,
                        latency <= true_ti
                            ? UserFeedback::Satisfied
                            : UserFeedback::Complained);
    }
    const double learned = learner.current().imperceptibleS;
    EXPECT_NEAR(learned, true_ti, 0.12);
    EXPECT_LT(learner.imperceptibleBracketS(), 0.2);
}

TEST(RequirementLearner, ImpatientUserTightensThreshold)
{
    RequirementLearner learner(inferRequirement(ageDetectionApp()));
    const double start = learner.current().imperceptibleS;
    // Complaints at latencies the table considered fine.
    for (int i = 0; i < 20; ++i)
        learner.observe(0.08, UserFeedback::Complained);
    EXPECT_LT(learner.current().imperceptibleS, start);
    EXPECT_LT(learner.current().imperceptibleS, 0.08);
}

TEST(RequirementLearner, AbandonmentLowersTolerable)
{
    RequirementLearner learner(inferRequirement(ageDetectionApp()));
    for (int i = 0; i < 10; ++i)
        learner.observe(1.5, UserFeedback::Abandoned);
    EXPECT_LT(learner.current().tolerableS, 3.0);
}

TEST(RequirementLearner, SatisfactionNeverLoosensBeyondEvidence)
{
    RequirementLearner learner(inferRequirement(ageDetectionApp()));
    for (int i = 0; i < 50; ++i)
        learner.observe(0.05, UserFeedback::Satisfied);
    // Satisfaction at 50 ms proves nothing beyond ~the bracket top.
    EXPECT_LE(learner.current().imperceptibleS, 0.4 + 1e-9);
    EXPECT_EQ(learner.observations(), 50u);
}

} // namespace
} // namespace pcnn
