/**
 * @file
 * Tests for the framework extensions: DVFS model + planner, spatial
 * multi-kernel co-location, static SM allocation, compiled-plan
 * persistence, and the online requirement learner.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "gpu/dvfs.hh"
#include "gpu/sim/gpu_sim.hh"
#include "nn/model_zoo.hh"
#include "pcnn/offline/dvfs_planner.hh"
#include "pcnn/offline/plan_io.hh"
#include "pcnn/runtime/kernel_scheduler.hh"
#include "pcnn/runtime/requirement_learner.hh"

namespace pcnn {
namespace {

// ---------------------------------------------------------------- DVFS

TEST(Dvfs, LevelsAscendToNominal)
{
    const auto &ls = DvfsModel::levels();
    ASSERT_GE(ls.size(), 2u);
    for (std::size_t i = 1; i < ls.size(); ++i)
        EXPECT_GT(ls[i], ls[i - 1]);
    EXPECT_DOUBLE_EQ(ls.back(), 1.0);
}

TEST(Dvfs, ScalingLaws)
{
    const DvfsModel dvfs(k20c());
    const GpuSpec half = dvfs.at(0.5);
    const GpuSpec full = dvfs.at(1.0);
    EXPECT_NEAR(half.coreClockMHz, full.coreClockMHz * 0.5, 1e-9);
    // Dynamic energy ~ f^2, leakage ~ f, bandwidth unchanged.
    EXPECT_NEAR(half.dynEnergyPerFlopJ,
                full.dynEnergyPerFlopJ * 0.25, 1e-18);
    EXPECT_NEAR(half.smStaticPowerW, full.smStaticPowerW * 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(half.memBandwidthGBs, full.memBandwidthGBs);
    EXPECT_NEAR(half.peakFlops(), full.peakFlops() * 0.5, 1e3);
}

TEST(Dvfs, LevelForBudget)
{
    const DvfsModel dvfs(k20c());
    // 10 ms of nominal work against a 100 ms budget: 0.5 suffices
    // (20 ms <= 100 ms).
    EXPECT_DOUBLE_EQ(dvfs.levelForBudget(0.010, 0.100), 0.5);
    // Tight budget: must stay at nominal.
    EXPECT_DOUBLE_EQ(dvfs.levelForBudget(0.010, 0.011), 1.0);
}

TEST(DvfsPlanner, SlowsDownWhenSlackIsLarge)
{
    // An interactive task on the fast server GPU has huge slack; the
    // planner should pick a level below nominal and still meet T_i.
    const DvfsPlanner planner(k20c());
    const DvfsPlan p = planner.plan(alexNet(), ageDetectionApp());
    EXPECT_LT(p.level, 1.0);
    EXPECT_GE(p.slackS, 0.0);
    EXPECT_LE(p.plan.latencyS(), 0.1);
}

TEST(DvfsPlanner, StaysFastUnderTightDeadline)
{
    // 60 FPS on the mobile GPU leaves no DVFS slack.
    const DvfsPlanner planner(jetsonTx1());
    const DvfsPlan p =
        planner.plan(googleNet(), videoSurveillanceApp());
    EXPECT_DOUBLE_EQ(p.level, 1.0);
}

TEST(DvfsPlanner, SavesEnergyAtEqualSatisfaction)
{
    const GpuSpec nominal = k20c();
    const DvfsPlanner planner(nominal);
    const AppSpec app = ageDetectionApp();
    const DvfsPlan scaled = planner.plan(alexNet(), app);

    const OfflineCompiler compiler(nominal);
    const CompiledPlan fast = compiler.compile(alexNet(), app);

    const SimResult r_fast =
        RuntimeKernelScheduler(nominal).execute(fast, pcnnPolicy());
    const SimResult r_slow = RuntimeKernelScheduler(scaled.gpu)
                                 .execute(scaled.plan, pcnnPolicy());
    const UserRequirement req = inferRequirement(app);
    // Both imperceptible...
    EXPECT_LE(r_fast.timeS, req.imperceptibleS);
    EXPECT_LE(r_slow.timeS, req.imperceptibleS);
    // ...but over one request period (requests arrive at 1 Hz and
    // the GPU idles at board base power in between) the scaled
    // deployment uses less total energy: the board power is a wash,
    // while the f^2 dynamic and f static terms shrink.
    const double period = 1.0 / app.dataRateHz;
    const GpuSim idle_fast(nominal);
    const GpuSim idle_slow(scaled.gpu);
    const double e_fast =
        r_fast.energy.total() +
        idle_fast.fixedInterval(period - r_fast.timeS, 0)
            .energy.total();
    const double e_slow =
        r_slow.energy.total() +
        idle_slow.fixedInterval(period - r_slow.timeS, 0)
            .energy.total();
    EXPECT_LT(e_slow, e_fast);
}

// ----------------------------------------------------- co-location

GpuSpec
toy8()
{
    GpuSpec g = jetsonTx1();
    g.name = "Toy8";
    g.numSMs = 8;
    return g;
}

KernelDesc
simpleKernel(const std::string &name, std::size_t grid)
{
    KernelDesc k;
    k.name = name;
    k.gridSize = grid;
    k.ctaWorkFlops = 1e7;
    k.blockSize = 256;
    k.issueDensity = 0.6;
    return k;
}

TEST(Partitioned, SingleKernelMatchesPsmRun)
{
    const GpuSim sim(toy8());
    const KernelDesc k = simpleKernel("a", 8);

    LaunchConfig psm;
    psm.scheduler = SchedKind::PrioritySM;
    psm.tlpLimit = 2;
    psm.smsAllowed = 4;
    psm.powerGateIdle = true;
    const SimResult single = sim.runKernel(k, psm);

    const PartitionedResult part =
        sim.runPartitioned({{k, 0, 4, 2}}, true);
    EXPECT_NEAR(part.timeS, single.timeS, single.timeS * 0.05);
    EXPECT_EQ(part.smsPowered, 4u);
}

TEST(Partitioned, DisjointKernelsDontSlowEachOther)
{
    const GpuSim sim(toy8());
    const KernelDesc a = simpleKernel("a", 8);
    const KernelDesc b = simpleKernel("b", 8);

    const PartitionedResult together = sim.runPartitioned(
        {{a, 0, 4, 2}, {b, 4, 8, 2}}, true);
    const PartitionedResult alone =
        sim.runPartitioned({{a, 0, 4, 2}}, true);
    // Same SM budget for kernel a either way.
    EXPECT_NEAR(together.kernelTimeS[0], alone.kernelTimeS[0],
                alone.kernelTimeS[0] * 0.05);
    EXPECT_EQ(together.smsPowered, 8u);
}

TEST(Partitioned, ColocationBeatsSequentialThroughput)
{
    // The Fig. 7 promise: PSM frees SMs for other work. Running the
    // co-runner on the freed SMs finishes earlier than running the
    // two kernels back to back on the whole GPU.
    const GpuSim sim(toy8());
    const KernelDesc cnn = simpleKernel("cnn", 8);   // optSM 4 @ tlp 2
    const KernelDesc other = simpleKernel("other", 8);

    const PartitionedResult together = sim.runPartitioned(
        {{cnn, 0, 4, 2}, {other, 4, 8, 2}}, true);

    LaunchConfig whole;
    whole.scheduler = SchedKind::RoundRobin;
    whole.tlpLimit = 2;
    const SimResult seq_a = sim.runKernel(cnn, whole);
    const SimResult seq_b = sim.runKernel(other, whole);
    EXPECT_LT(together.timeS, seq_a.timeS + seq_b.timeS);
}

TEST(PartitionedDeath, OverlappingRangesPanic)
{
    const GpuSim sim(toy8());
    const KernelDesc a = simpleKernel("a", 4);
    EXPECT_DEATH(
        sim.runPartitioned({{a, 0, 4, 2}, {a, 3, 8, 2}}, true),
        "claimed by two");
}

// --------------------------------------------- static SM allocation

TEST(StaticSmAllocation, WastesEnergyVsPerLayerOptSm)
{
    // Section III.D.2: allocating the max-Util SM count to *all*
    // layers leaves low-Util layers overprovisioned; per-layer optSM
    // (P-CNN) uses less energy at similar latency.
    const GpuSpec gpu = k20c();
    const OfflineCompiler compiler(gpu);
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    const RuntimeKernelScheduler rt(gpu);

    std::size_t max_opt_sm = 0;
    for (const LayerSchedule &ls : plan.layers)
        max_opt_sm = std::max(max_opt_sm, ls.kernel.optSM);

    ExecPolicy spatial_static = pcnnPolicy();
    spatial_static.fixedSmAllocation = max_opt_sm;

    const SimResult per_layer = rt.execute(plan, pcnnPolicy());
    const SimResult fixed = rt.execute(plan, spatial_static);
    EXPECT_LT(per_layer.energy.total(), fixed.energy.total());
    EXPECT_LT(per_layer.timeS, fixed.timeS * 1.5);
}

// ------------------------------------------------------------ plan IO

TEST(PlanIo, RoundTrip)
{
    const OfflineCompiler compiler(jetsonTx1());
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 4);
    const auto bytes = serializePlan(plan);
    const auto loaded = deserializePlan(bytes);
    ASSERT_TRUE(loaded.has_value());

    EXPECT_EQ(loaded->netName, plan.netName);
    EXPECT_EQ(loaded->gpuName, plan.gpuName);
    EXPECT_EQ(loaded->batch, plan.batch);
    ASSERT_EQ(loaded->layers.size(), plan.layers.size());
    for (std::size_t i = 0; i < plan.layers.size(); ++i) {
        EXPECT_EQ(loaded->layers[i].kernel.config.str(),
                  plan.layers[i].kernel.config.str());
        EXPECT_EQ(loaded->layers[i].kernel.optSM,
                  plan.layers[i].kernel.optSM);
        EXPECT_EQ(loaded->layers[i].layer.name,
                  plan.layers[i].layer.name);
        EXPECT_NEAR(loaded->layers[i].timeS, plan.layers[i].timeS,
                    1e-12);
    }
    EXPECT_NEAR(loaded->latencyS(), plan.latencyS(), 1e-12);
}

TEST(PlanIo, LoadedPlanExecutes)
{
    const GpuSpec gpu = k20c();
    const OfflineCompiler compiler(gpu);
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 2);
    const auto loaded = deserializePlan(serializePlan(plan));
    ASSERT_TRUE(loaded.has_value());

    const RuntimeKernelScheduler rt(gpu);
    const SimResult a = rt.execute(plan, pcnnPolicy());
    const SimResult b = rt.execute(*loaded, pcnnPolicy());
    EXPECT_NEAR(a.timeS, b.timeS, 1e-12);
    EXPECT_NEAR(a.energy.total(), b.energy.total(), 1e-12);
}

TEST(PlanIo, RejectsGarbage)
{
    EXPECT_FALSE(deserializePlan({}).has_value());
    EXPECT_FALSE(
        deserializePlan({1, 2, 3, 4, 5, 6, 7, 8, 9}).has_value());
    const OfflineCompiler compiler(k20c());
    auto bytes =
        serializePlan(compiler.compileAtBatch(alexNet(), 1));
    bytes.resize(bytes.size() - 7); // truncate
    EXPECT_FALSE(deserializePlan(bytes).has_value());
}

TEST(PlanIo, RejectsHostileStringLength)
{
    // Magic followed by a netName length field of ~2^64: the reader
    // must treat it as truncation, not wrap `pos + len` and read out
    // of bounds.
    std::vector<std::uint8_t> bytes = {'P', 'C', 'N', 'N',
                                       'P', 'L', 'N', '1'};
    for (int i = 0; i < 8; ++i)
        bytes.push_back(0xFF);
    EXPECT_FALSE(deserializePlan(bytes).has_value());
}

TEST(PlanIo, RejectsOutOfRangeFields)
{
    const OfflineCompiler compiler(k20c());
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);

    auto mutated = [&](auto &&mutate) {
        CompiledPlan bad = plan;
        mutate(bad);
        return deserializePlan(serializePlan(bad));
    };

    EXPECT_FALSE(mutated([](CompiledPlan &p) { p.batch = 0; }));
    EXPECT_FALSE(mutated([](CompiledPlan &p) {
        p.time.convS = -1.0;
    }));
    EXPECT_FALSE(mutated([](CompiledPlan &p) {
        p.layers[0].kernel.optTLP = 0;
    }));
    EXPECT_FALSE(mutated([](CompiledPlan &p) {
        p.layers[0].kernel.optSM = 0;
    }));
    EXPECT_FALSE(mutated([](CompiledPlan &p) {
        p.layers[0].layer.kernel = 0;
    }));
    EXPECT_FALSE(mutated([](CompiledPlan &p) {
        // Kernel no longer fits in the padded input.
        p.layers[0].layer.kernel = p.layers[0].layer.inH +
                                   2 * p.layers[0].layer.pad + 1;
    }));
    EXPECT_FALSE(mutated([](CompiledPlan &p) {
        p.layers[0].layer.groups = 7; // does not divide channels
    }));
}

TEST(PlanIo, FileRoundTrip)
{
    const OfflineCompiler compiler(gtx970m());
    const CompiledPlan plan = compiler.compileAtBatch(vgg16(), 2);
    const std::string path = "/tmp/pcnn_plan_test.bin";
    ASSERT_TRUE(savePlan(plan, path));
    const auto loaded = loadPlan(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->layers.size(), plan.layers.size());
    std::remove(path.c_str());
}

// --------------------------------------- plan format v2 (PR 4)

namespace {

/** Index of the first layer eligible for `algo`, or npos. */
std::size_t
firstEligible(const CompiledPlan &plan, ConvAlgo algo)
{
    for (std::size_t i = 0; i < plan.layers.size(); ++i)
        if (plan.layers[i].layer.algoEligible(algo))
            return i;
    return std::size_t(-1);
}

} // namespace

TEST(PlanIo, V2RoundTripPreservesAlgo)
{
    const OfflineCompiler compiler(k20c());
    CompiledPlan plan = compiler.compileAtBatch(alexNet(), 2);
    const std::size_t i = firstEligible(plan, ConvAlgo::Winograd);
    ASSERT_NE(i, std::size_t(-1)) << "AlexNet has 3x3 s1 layers";
    plan.layers[i].kernel.algo = ConvAlgo::Winograd;

    const auto bytes = serializePlan(plan);
    // v2 header: new magic plus an explicit format-version byte.
    ASSERT_GE(bytes.size(), 9u);
    EXPECT_EQ(bytes[7], std::uint8_t('2'));
    EXPECT_EQ(bytes[8], kPlanFormatVersion);

    const auto loaded = deserializePlan(bytes);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->layers[i].kernel.algo, ConvAlgo::Winograd);
    // The GEMM shape is re-derived to match the algorithm.
    const GemmShape want =
        plan.layers[i].layer.winogradGemmShape(plan.batch);
    EXPECT_EQ(loaded->layers[i].gemm.m, want.m);
    EXPECT_EQ(loaded->layers[i].gemm.n, want.n);
    EXPECT_EQ(loaded->layers[i].gemm.k, want.k);
    for (std::size_t j = 0; j < plan.layers.size(); ++j) {
        if (j != i) {
            EXPECT_EQ(loaded->layers[j].kernel.algo,
                      plan.layers[j].kernel.algo);
        }
    }
}

TEST(PlanIo, LegacyV1ReadDefaultsToIm2colFamily)
{
    const OfflineCompiler compiler(k20c());
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    // Write the pre-PR4 format: old magic, no version byte, no
    // per-layer algorithm field.
    const auto bytes = serializePlan(plan, 1);
    ASSERT_GE(bytes.size(), 8u);
    EXPECT_EQ(bytes[7], std::uint8_t('1'));

    const auto loaded = deserializePlan(bytes);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->layers.size(), plan.layers.size());
    for (const LayerSchedule &ls : loaded->layers)
        EXPECT_EQ(ls.kernel.algo, ConvAlgo::Im2col);
}

TEST(PlanIo, RejectsUnknownFormatVersion)
{
    const OfflineCompiler compiler(k20c());
    auto bytes =
        serializePlan(compiler.compileAtBatch(alexNet(), 1));
    ASSERT_GE(bytes.size(), 9u);
    bytes[8] = kPlanFormatVersion + 1; // from the future
    EXPECT_FALSE(deserializePlan(bytes).has_value());
    bytes[8] = 1; // magic says v2, byte says v1: inconsistent
    EXPECT_FALSE(deserializePlan(bytes).has_value());
}

TEST(PlanIo, RejectsHostileAlgoEncoding)
{
    const OfflineCompiler compiler(k20c());
    CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    plan.layers[0].kernel.algo = static_cast<ConvAlgo>(9);
    EXPECT_FALSE(deserializePlan(serializePlan(plan)).has_value());
}

TEST(PlanIo, RejectsAlgoIneligibleForGeometry)
{
    const OfflineCompiler compiler(k20c());
    CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    // AlexNet conv1 is 11x11 stride 4: neither winograd nor the 1x1
    // shortcut may be pinned onto it by a stale or hostile file.
    ASSERT_FALSE(
        plan.layers[0].layer.algoEligible(ConvAlgo::Winograd));
    plan.layers[0].kernel.algo = ConvAlgo::Winograd;
    EXPECT_FALSE(deserializePlan(serializePlan(plan)).has_value());
    plan.layers[0].kernel.algo = ConvAlgo::Direct1x1;
    EXPECT_FALSE(deserializePlan(serializePlan(plan)).has_value());
}

// ------------------------------------------- algorithm sweep mode

TEST(AlgoSweep, OffPinsExactRouteOnEveryLayer)
{
    const OfflineCompiler compiler(k20c());
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    for (const LayerSchedule &ls : plan.layers) {
        EXPECT_NE(ls.kernel.algo, ConvAlgo::Winograd);
        EXPECT_TRUE(ls.layer.algoEligible(ls.kernel.algo));
    }
}

TEST(AlgoSweep, OnPicksWinogradWhereItHelps)
{
    // TX1's launch overhead / bandwidth balance makes winograd win
    // on AlexNet CONV3 at batch 1; big desktop parts amortize the
    // im2col GEMM well enough that 16 shallow launches lose there.
    const GpuSpec gpu = jetsonTx1();
    const OfflineCompiler off(gpu);
    const OfflineCompiler on(gpu, TuneObjective::SkernelMetric,
                             AlgoSweep::On);
    const CompiledPlan plan_off = off.compileAtBatch(alexNet(), 1);
    const CompiledPlan plan_on = on.compileAtBatch(alexNet(), 1);

    // The sweep minimizes predicted layer time over algorithms, so
    // it can only improve on the exact-route plan.
    EXPECT_LE(plan_on.time.convS,
              plan_off.time.convS * (1.0 + 1e-9));
    bool any_wino = false;
    for (const LayerSchedule &ls : plan_on.layers) {
        EXPECT_TRUE(ls.layer.algoEligible(ls.kernel.algo));
        any_wino |= ls.kernel.algo == ConvAlgo::Winograd;
    }
    EXPECT_TRUE(any_wino)
        << "AlexNet's 3x3 layers should prefer winograd on TX1";

    // A swept plan round-trips and executes on the simulator.
    const auto loaded = deserializePlan(serializePlan(plan_on));
    ASSERT_TRUE(loaded.has_value());
    const RuntimeKernelScheduler rt(gpu);
    const SimResult a = rt.execute(plan_on, pcnnPolicy());
    const SimResult b = rt.execute(*loaded, pcnnPolicy());
    EXPECT_NEAR(a.timeS, b.timeS, 1e-12);
}

// -------------------------------------------------- requirement learner

TEST(RequirementLearner, ConvergesTowardTrueThreshold)
{
    // Hidden truth: this user's T_i is 0.4 s (they are patient).
    const double true_ti = 0.4;
    RequirementLearner learner(inferRequirement(ageDetectionApp()));
    Rng rng(30);

    for (int i = 0; i < 200; ++i) {
        const double latency = rng.uniform(0.01, 1.0);
        learner.observe(latency,
                        latency <= true_ti
                            ? UserFeedback::Satisfied
                            : UserFeedback::Complained);
    }
    const double learned = learner.current().imperceptibleS;
    EXPECT_NEAR(learned, true_ti, 0.12);
    EXPECT_LT(learner.imperceptibleBracketS(), 0.2);
}

TEST(RequirementLearner, ImpatientUserTightensThreshold)
{
    RequirementLearner learner(inferRequirement(ageDetectionApp()));
    const double start = learner.current().imperceptibleS;
    // Complaints at latencies the table considered fine.
    for (int i = 0; i < 20; ++i)
        learner.observe(0.08, UserFeedback::Complained);
    EXPECT_LT(learner.current().imperceptibleS, start);
    EXPECT_LT(learner.current().imperceptibleS, 0.08);
}

TEST(RequirementLearner, AbandonmentLowersTolerable)
{
    RequirementLearner learner(inferRequirement(ageDetectionApp()));
    for (int i = 0; i < 10; ++i)
        learner.observe(1.5, UserFeedback::Abandoned);
    EXPECT_LT(learner.current().tolerableS, 3.0);
}

TEST(RequirementLearner, SatisfactionNeverLoosensBeyondEvidence)
{
    RequirementLearner learner(inferRequirement(ageDetectionApp()));
    for (int i = 0; i < 50; ++i)
        learner.observe(0.05, UserFeedback::Satisfied);
    // Satisfaction at 50 ms proves nothing beyond ~the bracket top.
    EXPECT_LE(learner.current().imperceptibleS, 0.4 + 1e-9);
    EXPECT_EQ(learner.observations(), 50u);
}

} // namespace
} // namespace pcnn
