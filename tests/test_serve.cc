/**
 * @file
 * Concurrent serving engine tests (DESIGN.md §5f): bounded-queue
 * backpressure, deadline-aware batching policy, drain-on-stop,
 * bitwise-identical multi-replica inference over shared weight
 * panels, steady-state zero-repack, and the shared-weight mutation
 * contracts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/parallel.hh"
#include "common/random.hh"
#include "gpu/gpu_spec.hh"
#include "nn/model_zoo.hh"
#include "nn/serialize.hh"
#include "pcnn/offline/batch_selector.hh"
#include "serve/engine.hh"
#include "tensor/tensor_ops.hh"
#include "tensor/winograd.hh"
#include "train/sgd.hh"

namespace pcnn {
namespace {

// The engine spawns worker threads; the default "fast" (plain fork)
// death-test style is unsafe once threads exist.
class ThreadsafeDeathStyle : public ::testing::Environment
{
    void
    SetUp() override
    {
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    }
};

const auto *const g_death_style =
    ::testing::AddGlobalTestEnvironment(new ThreadsafeDeathStyle);

/** A background-style requirement: no deadline pressure at all. */
UserRequirement
relaxedReq()
{
    UserRequirement r;
    r.timeInsensitive = true;
    return r;
}

Tensor
randomInput(Rng &rng, const Shape &in)
{
    Tensor t(Shape{1, in.c, in.h, in.w});
    t.fillUniform(rng, -1.0f, 1.0f);
    return t;
}

// --------------------------------------------------------- Batcher

TEST(Batcher, FullBatchFlushesImmediately)
{
    Batcher b(BatcherConfig{4, relaxedReq(), 10.0});
    EXPECT_EQ(b.waitBudgetS(0.0, 4), 0.0);
    EXPECT_EQ(b.waitBudgetS(0.0, 9), 0.0);
}

TEST(Batcher, TimeInsensitiveWaitsUpToMaxWait)
{
    Batcher b(BatcherConfig{4, relaxedReq(), 2.0});
    EXPECT_DOUBLE_EQ(b.waitBudgetS(0.0, 1), 2.0);
    EXPECT_DOUBLE_EQ(b.waitBudgetS(1.5, 1), 0.5);
    EXPECT_EQ(b.waitBudgetS(2.5, 1), 0.0);
}

TEST(Batcher, DeadlineSlackShrinksBudget)
{
    UserRequirement req; // interactive: T_i = 0.1 s
    Batcher b(BatcherConfig{8, req, 10.0});
    // No service estimate yet: the whole imperceptible region is
    // slack, so the budget is T_i - age.
    EXPECT_NEAR(b.waitBudgetS(0.02, 1), 0.08, 1e-12);
    // A measured service time eats into the slack.
    b.recordService(8, 0.06);
    EXPECT_NEAR(b.waitBudgetS(0.02, 1), 0.02, 1e-12);
    // Past the point of no return the budget clamps to zero.
    EXPECT_EQ(b.waitBudgetS(0.09, 1), 0.0);
}

TEST(Batcher, EstServiceFallsBackToSmallerBatch)
{
    Batcher b(BatcherConfig{8, relaxedReq(), 1.0});
    EXPECT_EQ(b.estServiceS(8), 0.0);
    b.recordService(2, 0.010);
    EXPECT_DOUBLE_EQ(b.estServiceS(8), 0.010); // nearest under 8
    b.recordService(8, 0.030);
    EXPECT_DOUBLE_EQ(b.estServiceS(8), 0.030); // exact beats fallback
    EXPECT_DOUBLE_EQ(b.estServiceS(2), 0.010);
}

TEST(Batcher, RecordServiceSmoothes)
{
    Batcher b(BatcherConfig{1, relaxedReq(), 0.0});
    b.recordService(1, 0.100);
    b.recordService(1, 0.200);
    const double est = b.estServiceS(1);
    EXPECT_GT(est, 0.100);
    EXPECT_LT(est, 0.200);
}

// ---------------------------------------------------- RequestQueue

PendingRequest
makeReq(std::uint64_t id)
{
    PendingRequest r;
    r.id = id;
    r.input = Tensor(Shape{1, 1, 1, 1});
    r.enqueued = std::chrono::steady_clock::now();
    return r;
}

TEST(RequestQueue, RejectsWhenFullInsteadOfBlocking)
{
    RequestQueue q(2);
    EXPECT_EQ(q.push(makeReq(0)), SubmitStatus::Accepted);
    EXPECT_EQ(q.push(makeReq(1)), SubmitStatus::Accepted);
    EXPECT_EQ(q.push(makeReq(2)), SubmitStatus::QueueFull);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.highWater(), 2u);
}

TEST(RequestQueue, StoppedAfterClose)
{
    RequestQueue q(4);
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_EQ(q.push(makeReq(0)), SubmitStatus::Stopped);
    q.close(); // idempotent
}

TEST(RequestQueue, DrainsRemainingAfterClose)
{
    RequestQueue q(8);
    for (std::uint64_t i = 0; i < 5; ++i)
        ASSERT_EQ(q.push(makeReq(i)), SubmitStatus::Accepted);
    q.close();

    Batcher policy(BatcherConfig{2, relaxedReq(), 10.0});
    std::vector<std::uint64_t> ids;
    for (;;) {
        auto batch = q.popBatch(policy);
        if (batch.empty())
            break;
        EXPECT_LE(batch.size(), 2u);
        for (auto &r : batch)
            ids.push_back(r.id);
    }
    // Every queued request handed out exactly once, in order.
    ASSERT_EQ(ids.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(ids[i], i);
    EXPECT_EQ(q.size(), 0u);
}

TEST(RequestQueue, MpmcStressDeliversEachRequestOnce)
{
    RequestQueue q(1024);
    Batcher policy(BatcherConfig{4, relaxedReq(), 0.0});
    constexpr std::size_t kProducers = 4, kConsumers = 3;
    constexpr std::uint64_t kPerProducer = 200;

    std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
    for (auto &s : seen)
        s = 0;

    std::vector<std::thread> consumers;
    for (std::size_t c = 0; c < kConsumers; ++c)
        consumers.emplace_back([&] {
            for (;;) {
                auto batch = q.popBatch(policy);
                if (batch.empty())
                    return;
                for (auto &r : batch)
                    seen[r.id].fetch_add(1);
            }
        });

    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p)
        producers.emplace_back([&, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                const std::uint64_t id = p * kPerProducer + i;
                while (q.push(makeReq(id)) != SubmitStatus::Accepted)
                    std::this_thread::yield();
            }
        });

    for (auto &t : producers)
        t.join();
    q.close();
    for (auto &t : consumers)
        t.join();

    for (const auto &s : seen)
        EXPECT_EQ(s.load(), 1);
}

// ---------------------------------------------------- batch purity

TEST(Serve, BatchedForwardIsBitwiseRowInvariant)
{
    // The engine serves one request inside varying batch sizes; this
    // only preserves bitwise reproducibility because a batched
    // forward computes each item exactly as a batch-1 forward would.
    Rng rng(7);
    Network net = makeMiniAlexNet(rng);
    Tensor batch(Shape{3, net.inputShape().c, net.inputShape().h,
                       net.inputShape().w});
    batch.fillUniform(rng, -1.0f, 1.0f);

    const Tensor together = net.forward(batch, false);
    for (std::size_t i = 0; i < 3; ++i) {
        const Tensor alone = net.forward(batch.item(i), false);
        ASSERT_EQ(alone.size(), together.shape().itemSize());
        EXPECT_EQ(std::memcmp(alone.data(),
                              together.data() +
                                  i * together.shape().itemSize(),
                              alone.size() * sizeof(float)),
                  0)
            << "batch row " << i << " differs from batch-1 forward";
    }
}

// --------------------------------------------------------- engine

EngineConfig
quickConfig(std::size_t workers, std::size_t max_batch = 1)
{
    EngineConfig cfg;
    cfg.workers = workers;
    cfg.maxBatch = max_batch;
    cfg.queueCapacity = 64;
    cfg.requirement = relaxedReq();
    cfg.maxWaitS = 0.0;
    return cfg;
}

TEST(Serve, EngineMatchesPrototypeBitwise)
{
    Rng rng(11);
    Network net = makeMiniAlexNet(rng);
    Rng inputs(5);
    std::vector<Tensor> xs;
    for (int i = 0; i < 6; ++i)
        xs.push_back(randomInput(inputs, net.inputShape()));

    // Reference logits from the plain network, before serving.
    std::vector<Tensor> want;
    for (const Tensor &x : xs)
        want.push_back(net.forward(x, false));

    ServeEngine engine(net, quickConfig(2));
    std::vector<std::future<ServeResult>> futs;
    for (const Tensor &x : xs) {
        auto sub = engine.submit(x);
        ASSERT_EQ(sub.status, SubmitStatus::Accepted);
        futs.push_back(std::move(sub.result));
    }
    for (std::size_t i = 0; i < futs.size(); ++i) {
        const ServeResult r = futs[i].get();
        ASSERT_EQ(r.logits.size(), want[i].size());
        EXPECT_EQ(std::memcmp(r.logits.data(), want[i].data(),
                              r.logits.size() * sizeof(float)),
                  0)
            << "request " << i << " logits differ from prototype";
        EXPECT_GE(r.latencyS, 0.0);
        EXPECT_EQ(r.batchSize, 1u);
    }
}

TEST(Serve, WorkerCountsProduceBitwiseIdenticalLogits)
{
    // Identical weight init in two prototypes (same seed); the only
    // difference between the runs is the replica/lane partition.
    Rng inputs(13);
    Rng rng1(42), rng4(42);
    Network net1 = makeMiniAlexNet(rng1);
    Network net4 = makeMiniAlexNet(rng4);
    std::vector<Tensor> xs;
    for (int i = 0; i < 8; ++i)
        xs.push_back(randomInput(inputs, net1.inputShape()));

    auto run = [&](Network &net, std::size_t workers) {
        ServeEngine engine(net, quickConfig(workers));
        std::vector<std::future<ServeResult>> futs;
        for (const Tensor &x : xs) {
            auto sub = engine.submit(x);
            EXPECT_EQ(sub.status, SubmitStatus::Accepted);
            futs.push_back(std::move(sub.result));
        }
        std::vector<Tensor> out;
        for (auto &f : futs)
            out.push_back(f.get().logits);
        return out;
    };

    const auto one = run(net1, 1);
    const auto four = run(net4, 4);
    ASSERT_EQ(one.size(), four.size());
    for (std::size_t i = 0; i < one.size(); ++i)
        EXPECT_EQ(std::memcmp(one[i].data(), four[i].data(),
                              one[i].size() * sizeof(float)),
                  0)
            << "request " << i << " differs between 1 and 4 workers";
}

TEST(Serve, SteadyStatePacksNoNewPanels)
{
    Rng rng(3);
    Network net = makeMiniAlexNet(rng);
    ServeEngine engine(net, quickConfig(3));

    // Drive a first wave through every worker, then snapshot the
    // global pack counters: the construction-time warm-up must have
    // materialized everything the serving route reads.
    Rng inputs(17);
    auto wave = [&](int n) {
        std::vector<std::future<ServeResult>> futs;
        for (int i = 0; i < n; ++i) {
            auto sub = engine.submit(randomInput(inputs,
                                                 net.inputShape()));
            ASSERT_EQ(sub.status, SubmitStatus::Accepted);
            futs.push_back(std::move(sub.result));
        }
        for (auto &f : futs)
            f.get();
    };
    wave(6);
    const std::uint64_t packs = weightPackCount();
    const std::uint64_t wino = winogradPackCount();
    wave(24);
    EXPECT_EQ(weightPackCount(), packs)
        << "steady-state serving repacked SGEMM panels";
    EXPECT_EQ(winogradPackCount(), wino)
        << "steady-state serving re-transformed winograd weights";
}

TEST(Serve, BackpressureShedsWhenQueueFull)
{
    Rng rng(23);
    Network net = makeMiniAlexNet(rng);
    EngineConfig cfg;
    cfg.workers = 1;
    cfg.maxBatch = 8;        // workers wait for the batch to fill...
    cfg.queueCapacity = 2;   // ...so the tiny queue stays occupied
    cfg.requirement = relaxedReq();
    cfg.maxWaitS = 30.0;
    ServeEngine engine(net, cfg);

    Rng inputs(29);
    std::vector<std::future<ServeResult>> futs;
    std::size_t shed = 0;
    for (int i = 0; i < 6; ++i) {
        auto sub = engine.submit(randomInput(inputs, net.inputShape()));
        if (sub.status == SubmitStatus::Accepted)
            futs.push_back(std::move(sub.result));
        else if (sub.status == SubmitStatus::QueueFull)
            ++shed;
    }
    EXPECT_GE(shed, 1u) << "full queue never shed a request";
    EXPECT_EQ(futs.size() + shed, 6u);

    engine.stop(); // drains the accepted requests despite maxWaitS
    for (auto &f : futs)
        EXPECT_EQ(f.get().logits.shape().h, 1u);
    EXPECT_EQ(engine.metrics().shed, shed);
}

TEST(Serve, StopDrainsEveryAcceptedRequestExactlyOnce)
{
    Rng rng(31);
    Network net = makeMiniAlexNet(rng);
    EngineConfig cfg = quickConfig(2, 4);
    cfg.maxWaitS = 30.0; // batches would otherwise wait to fill
    ServeEngine engine(net, cfg);

    Rng inputs(37);
    std::vector<std::future<ServeResult>> futs;
    for (int i = 0; i < 10; ++i) {
        auto sub = engine.submit(randomInput(inputs, net.inputShape()));
        ASSERT_EQ(sub.status, SubmitStatus::Accepted);
        futs.push_back(std::move(sub.result));
    }
    engine.stop();
    engine.stop(); // idempotent

    for (auto &f : futs) {
        ASSERT_TRUE(f.valid());
        f.get(); // fulfilled exactly once; a second set would throw
    }
    const ServeMetricsSnapshot m = engine.metrics();
    EXPECT_EQ(m.completed, 10u);
    EXPECT_EQ(m.batchHist.images(), 10u);

    // Submissions after stop are refused, not queued.
    auto late = engine.submit(randomInput(inputs, net.inputShape()));
    EXPECT_EQ(late.status, SubmitStatus::Stopped);
}

TEST(Serve, MetricsCountBatchesAndTails)
{
    Rng rng(41);
    Network net = makeMiniAlexNet(rng);
    ServeEngine engine(net, quickConfig(1));

    Rng inputs(43);
    std::vector<std::future<ServeResult>> futs;
    for (int i = 0; i < 12; ++i) {
        auto sub = engine.submit(randomInput(inputs, net.inputShape()));
        ASSERT_EQ(sub.status, SubmitStatus::Accepted);
        futs.push_back(std::move(sub.result));
    }
    for (auto &f : futs)
        f.get();

    const ServeMetricsSnapshot m = engine.metrics();
    EXPECT_EQ(m.completed, 12u);
    EXPECT_EQ(m.shed, 0u);
    EXPECT_EQ(m.batchHist.images(), 12u);
    EXPECT_GE(m.batchHist.batches(), 1u);
    EXPECT_GT(m.latency.p50S, 0.0);
    EXPECT_LE(m.latency.p50S, m.latency.p99S);
    EXPECT_LE(m.latency.p99S, m.latency.p999S);
    EXPECT_LE(m.latency.p999S, m.latency.maxS);
    EXPECT_GT(m.throughputRps, 0.0);
    EXPECT_GE(m.queueHighWater, 1u);
}

TEST(Serve, LanePartitionComposesWithoutOversubscription)
{
    Rng rng(47);
    Network net = makeMiniAlexNet(rng);
    EngineConfig cfg = quickConfig(2);
    cfg.lanesPerWorker = 1;
    ServeEngine engine(net, cfg);
    EXPECT_EQ(engine.lanesPerWorker(), 1u);

    Rng inputs(53);
    auto sub = engine.submit(randomInput(inputs, net.inputShape()));
    ASSERT_EQ(sub.status, SubmitStatus::Accepted);
    sub.result.get();
}

// ------------------------------------- shared-weight write contracts

using ServeDeathTest = ::testing::Test;

TEST(ServeDeathTest, SgdStepOnSharedWeightsFails)
{
    Rng rng(59);
    Network net = makeMiniAlexNet(rng);
    Network replica = net.cloneSharingWeights();
    SgdOptimizer opt(SgdConfig{});
    EXPECT_DEATH(opt.step(net.params()), "shared across serving");
}

TEST(ServeDeathTest, WeightLoadIntoSharedWeightsFails)
{
    Rng rng(61);
    Network net = makeMiniAlexNet(rng);
    const auto bytes = serializeWeights(net);
    Network replica = net.cloneSharingWeights();
    EXPECT_DEATH((void)deserializeWeights(net, bytes),
                 "shared across");
}

TEST(ServeDeathTest, MarkUpdatedOnSharedParamFails)
{
    Rng rng(67);
    Network net = makeMiniAlexNet(rng);
    Network replica = net.cloneSharingWeights();
    Param *p = net.params().front();
    ASSERT_TRUE(p->isShared());
    EXPECT_DEATH(p->markUpdated(), "read-only");
}

TEST(Serve, CloneSharesStorageAndFreezesBothSides)
{
    Rng rng(71);
    Network net = makeMiniAlexNet(rng);
    Network replica = net.cloneSharingWeights();

    const auto orig = net.params();
    const auto copy = replica.params();
    ASSERT_EQ(orig.size(), copy.size());
    for (std::size_t i = 0; i < orig.size(); ++i) {
        // Same Param object: storage is shared, not duplicated.
        EXPECT_EQ(orig[i], copy[i]);
        EXPECT_TRUE(orig[i]->isShared());
    }
}

// ------------------------------------------------- batch selection

TEST(Serve, OptimalServeBatchCoversTaskClasses)
{
    Rng rng(73);
    Network net = makeMiniAlexNet(rng);
    const NetDescriptor desc = describe(net);
    const GpuSpec gpu = jetsonTx1();

    AppSpec background = imageTaggingApp();
    const std::size_t bg = optimalServeBatch(
        gpu, desc, background, inferRequirement(background));
    EXPECT_GE(bg, 1u);

    AppSpec interactive = ageDetectionApp();
    const std::size_t fg = optimalServeBatch(
        gpu, desc, interactive, inferRequirement(interactive));
    EXPECT_GE(fg, 1u);
    EXPECT_LE(fg, BatchSelector::maxBatch);
}

} // namespace
} // namespace pcnn
