/**
 * @file
 * Int8 quantized inference path (DESIGN.md §5i).
 *
 * The int8 scheme is built for determinism: int32 accumulation is
 * exact (qgemm bounds K) and every tier applies the identical scalar
 * dequant epilogue, so quantized results must be *bitwise* identical
 * across kernel tiers, thread counts, and serving replicas — a
 * stronger contract than the fp32 path's per-tier reproducibility.
 * These tests pin that contract end to end, check the quantizers'
 * corner cases, harden the QuantProfile / plan-v3 readers against
 * hostile bytes, and cover the tuner's precision-vs-perforation walk.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/alloc_count.hh"
#include "common/parallel.hh"
#include "common/random.hh"
#include "data/synthetic.hh"
#include "nn/fusion.hh"
#include "nn/model_zoo.hh"
#include "nn/network.hh"
#include "pcnn/offline/compiler.hh"
#include "pcnn/offline/plan_io.hh"
#include "pcnn/offline/quant_profile.hh"
#include "pcnn/runtime/accuracy_tuner.hh"
#include "pcnn/runtime/executor.hh"
#include "tensor/quant.hh"
#include "tensor/tensor_ops.hh"
#include "train/loss.hh"
#include "train/trainer.hh"

namespace pcnn {
namespace {

/** Restores the ambient pool width when a test resizes it. */
class ThreadCountGuard
{
  public:
    ThreadCountGuard() : saved(threadCount()) {}
    ~ThreadCountGuard() { setThreadCount(saved); }

  private:
    std::size_t saved;
};

/** Restores the process-wide forced-quantization flag. */
class QuantForceGuard
{
  public:
    ~QuantForceGuard() { clearQuantizeForced(); }
};

bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(float)) == 0;
}

// ------------------------------------------------------- quantizers

TEST(Quant, ActivationParamsCoverRangeAndZero)
{
    // A positive-only range still includes 0 (padding and ReLU
    // outputs must be exactly representable).
    const float pos[] = {1.0f, 2.0f, 4.0f};
    const QuantParams p = computeQuantParams(pos, 3);
    EXPECT_GT(p.scale, 0.0f);
    EXPECT_EQ(p.zero, 0u); // range widened down to 0
    EXPECT_NEAR(p.scale * 127.0f, 4.0f, 1e-5);

    const float mixed[] = {-2.0f, 0.5f, 2.0f};
    const QuantParams m = computeQuantParams(mixed, 3);
    // real(q=zero) == 0 by construction of the asymmetric scheme.
    EXPECT_GT(m.zero, 0u);
    EXPECT_LE(m.zero, 127u);
    EXPECT_NEAR(m.scale * 127.0f, 4.0f, 0.1f);
}

TEST(Quant, DegenerateRangesYieldIdentityParams)
{
    const QuantParams none = computeQuantParams(nullptr, 0);
    EXPECT_EQ(none.scale, 1.0f);
    EXPECT_EQ(none.zero, 0u);

    const float zeros[] = {0.0f, 0.0f};
    const QuantParams z = computeQuantParams(zeros, 2);
    EXPECT_EQ(z.scale, 1.0f);
    EXPECT_EQ(z.zero, 0u);

    const float bad[] = {1.0f, std::nanf("")};
    const QuantParams n = computeQuantParams(bad, 2);
    EXPECT_EQ(n.scale, 1.0f);
    EXPECT_EQ(n.zero, 0u);
}

TEST(Quant, WeightPanelLayoutAndRowSums)
{
    // 2 x 6 weights, K padded to 8; row 1 is all zeros (scale 1).
    const float w[] = {1.0f, -1.0f, 0.5f, 0.25f, -0.5f, 1.0f,
                       0.0f, 0.0f,  0.0f, 0.0f,  0.0f,  0.0f};
    QuantizedPanel panel;
    quantizeWeights(2, 6, w, panel);
    EXPECT_EQ(panel.rows, 2u);
    EXPECT_EQ(panel.cols, 6u);
    EXPECT_EQ(panel.kp, 8u);
    // Row 0: maxabs 1 -> scale 1/127, q = round(w * 127).
    EXPECT_NEAR(panel.scales[0], 1.0f / 127.0f, 1e-7);
    EXPECT_EQ(panel.data[0], 127);
    EXPECT_EQ(panel.data[1], -127);
    EXPECT_EQ(panel.data[6], 0); // pad bytes are zero
    EXPECT_EQ(panel.data[7], 0);
    std::int32_t sum = 0;
    for (int i = 0; i < 8; ++i)
        sum += panel.data[i];
    EXPECT_EQ(panel.rowSums[0], sum);
    // All-zero row quantizes as identity, not a division by zero.
    EXPECT_EQ(panel.scales[1], 1.0f);
    EXPECT_EQ(panel.rowSums[1], 0);
}

TEST(Quant, PackActivationsMatchesScalarReference)
{
    // The packer has a vectorized fast path on AVX2 hosts; this pins
    // it (and the column padding) to an independent scalar rendering
    // of the documented layout: np = quantPackedCols(n) columns,
    // group g stores column j at g*4np + 4j, k-pad rows and column
    // pads hold the zero point, quantization rounds to nearest-even.
    Rng rng(31);
    const std::size_t shapes[][2] = {
        {1, 1}, {4, 8}, {7, 33}, {13, 100}, {6, 32}, {9, 129}};
    for (const auto &s : shapes) {
        const std::size_t k = s[0], n = s[1];
        const std::size_t np = quantPackedCols(n);
        std::vector<float> x(k * n);
        for (float &v : x)
            v = rng.uniform(-2.0f, 3.0f);
        const QuantParams qp = computeQuantParams(x.data(), x.size());
        std::vector<std::uint8_t> got;
        quantizePackActivations(x.data(), k, n, n, false, qp, got);

        const std::size_t groups = (k + 3) / 4;
        std::vector<std::uint8_t> want(groups * 4 * np, qp.zero);
        const float inv = 1.0f / qp.scale; // as the packer computes it
        for (std::size_t p = 0; p < k; ++p)
            for (std::size_t j = 0; j < n; ++j) {
                long q = std::lrintf(x[p * n + j] * inv) + qp.zero;
                q = std::max(0l, std::min(127l, q));
                want[(p / 4) * 4 * np + 4 * j + p % 4] =
                    std::uint8_t(q);
            }
        ASSERT_GE(got.size(), want.size()) << k << "x" << n;
        EXPECT_EQ(std::memcmp(got.data(), want.data(), want.size()), 0)
            << k << "x" << n;
    }
}

// ------------------------------------------ qgemm vs integer oracle

/** Bit-exact reference: same int32 math and the same scalar dequant
 * sequence as every micro-kernel tier, computed the naive way. */
void
naiveQgemm(std::size_t m, std::size_t n, std::size_t k,
           const QuantizedPanel &a, const std::uint8_t *b,
           const QuantParams &bq, float *c, const float *bias,
           bool relu)
{
    const std::size_t groups = a.kp / 4;
    const std::size_t ldb = 4 * quantPackedCols(n);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t j = 0; j < n; ++j) {
            std::int64_t acc = 0;
            for (std::size_t g = 0; g < groups; ++g)
                for (std::size_t t = 0; t < 4; ++t)
                    acc += std::int64_t(a.data[r * a.kp + g * 4 + t]) *
                           std::int64_t(b[g * ldb + 4 * j + t]);
            const std::int64_t adj =
                acc - std::int64_t(bq.zero) * a.rowSums[r];
            float v = float(adj) * (a.scales[r] * bq.scale);
            if (bias != nullptr)
                v += bias[r];
            if (relu && v < 0.0f)
                v = 0.0f;
            c[r * n + j] = v;
        }
    }
    (void)k;
}

struct QgemmCase
{
    std::size_t m, n, k;
    bool bias, relu;
};

/** Shapes chosen to hit full tiles, row/col edges, and K padding in
 * every tier (mr up to 8, nr up to 32, K % 4 != 0). */
const QgemmCase kCases[] = {
    {1, 1, 1, false, false},   {4, 8, 16, true, false},
    {8, 32, 64, true, true},   {13, 37, 10, true, true},
    {37, 53, 129, true, true}, {6, 130, 48, false, true},
};

void
runQgemmCase(const QgemmCase &cs, Rng &rng, std::vector<float> &got,
             std::vector<float> &want)
{
    std::vector<float> w(cs.m * cs.k), x(cs.k * cs.n),
        bias(cs.m);
    for (float &v : w)
        v = rng.uniform(-1.5f, 1.5f);
    for (float &v : x)
        v = rng.uniform(-2.0f, 3.0f);
    for (float &v : bias)
        v = rng.uniform(-0.5f, 0.5f);

    QuantizedPanel panel;
    quantizeWeights(cs.m, cs.k, w.data(), panel);
    const QuantParams aq = computeQuantParams(x.data(), x.size());
    std::vector<std::uint8_t> bp;
    quantizePackActivations(x.data(), cs.k, cs.n, cs.n, false, aq, bp);

    got.assign(cs.m * cs.n, -1e30f);
    want.assign(cs.m * cs.n, 1e30f);
    qgemm(cs.m, cs.n, cs.k, panel, bp.data(), aq, got.data(),
          cs.bias ? bias.data() : nullptr, cs.relu);
    naiveQgemm(cs.m, cs.n, cs.k, panel, bp.data(), aq, want.data(),
               cs.bias ? bias.data() : nullptr, cs.relu);
}

TEST(Quant, QgemmMatchesIntegerOracleExactly)
{
    Rng rng(11);
    for (const QgemmCase &cs : kCases) {
        std::vector<float> got, want;
        runQgemmCase(cs, rng, got, want);
        ASSERT_EQ(std::memcmp(got.data(), want.data(),
                              got.size() * sizeof(float)),
                  0)
            << cs.m << "x" << cs.n << "x" << cs.k;
    }
}

TEST(Quant, QgemmBitwiseIdenticalAcrossTiers)
{
    // The determinism contract is *cross*-tier: every supported tier
    // must agree with the integer oracle bit for bit.
    for (KernelTier tier : supportedKernelTiers()) {
        setKernelTier(tier);
        Rng rng(12); // same inputs for every tier
        for (const QgemmCase &cs : kCases) {
            std::vector<float> got, want;
            runQgemmCase(cs, rng, got, want);
            EXPECT_EQ(std::memcmp(got.data(), want.data(),
                                  got.size() * sizeof(float)),
                      0)
                << kernelTierName(tier) << " " << cs.m << "x" << cs.n
                << "x" << cs.k;
        }
    }
    resetKernelTier();
}

TEST(Quant, QgemmBitwiseIdenticalAcrossThreadCounts)
{
    ThreadCountGuard guard;
    const QgemmCase cs{37, 96, 200, true, true};
    Rng rng(13);
    std::vector<float> base, want;
    setThreadCount(1);
    runQgemmCase(cs, rng, base, want);
    for (std::size_t threads : {std::size_t(2), std::size_t(4)}) {
        setThreadCount(threads);
        Rng rng2(13);
        std::vector<float> got, w2;
        runQgemmCase(cs, rng2, got, w2);
        EXPECT_EQ(std::memcmp(base.data(), got.data(),
                              base.size() * sizeof(float)),
                  0)
            << threads << " threads";
    }
}

TEST(QuantDeath, QgemmRejectsOversizedK)
{
    const std::size_t k = kQuantMaxK + 1;
    std::vector<float> w(k, 0.25f), x(k, 1.0f);
    QuantizedPanel panel;
    quantizeWeights(1, k, w.data(), panel);
    const QuantParams aq = computeQuantParams(x.data(), x.size());
    std::vector<std::uint8_t> bp;
    quantizePackActivations(x.data(), k, 1, 1, false, aq, bp);
    float c = 0.0f;
    EXPECT_DEATH(qgemm(1, 1, k, panel, bp.data(), aq, &c, nullptr,
                       false),
                 "exact-int32");
}

// --------------------------------------------- end-to-end networks

Tensor
makeInput(const Network &net, std::size_t batch, std::uint64_t seed)
{
    const Shape &in = net.inputShape();
    Tensor x(Shape{batch, in.c, in.h, in.w});
    Rng rng(seed);
    x.fillGaussian(rng, 0, 1);
    return x;
}

TEST(Quant, Fp32PathBitwiseUnchangedByToggle)
{
    Rng rng(21);
    Network net = makeMiniAlexNet(rng);
    const Tensor x = makeInput(net, 4, 22);

    // Pin both states explicitly so the test also holds under a
    // PCNN_QUANTIZE=1 environment (the CI smoke leg).
    QuantForceGuard guard;
    Tensor before, during, after;
    setQuantizeForced(false);
    net.forwardInto(x, false, before);
    setQuantizeForced(true);
    net.forwardInto(x, false, during);
    setQuantizeForced(false);
    net.forwardInto(x, false, after);

    // Paper-fidelity default: with quantization off the fp32 result
    // is bit-identical to a build that never heard of int8.
    EXPECT_TRUE(bitwiseEqual(before, after));
    // And the quantized pass really took the other route.
    EXPECT_FALSE(bitwiseEqual(before, during));
}

TEST(Quant, ForwardBitwiseIdenticalAcrossThreadCounts)
{
    ThreadCountGuard tguard;
    QuantForceGuard qguard;
    setQuantizeForced(true);

    for (int zoo = 0; zoo < 3; ++zoo) {
        Rng rng(31);
        Network net = zoo == 0   ? makeMiniAlexNet(rng)
                      : zoo == 1 ? makeMiniVgg(rng)
                                 : makeMiniInception(rng);
        const Tensor x = makeInput(net, 4, 32);
        setThreadCount(1);
        Tensor base;
        net.forwardInto(x, false, base);
        for (std::size_t threads : {std::size_t(2), std::size_t(4)}) {
            setThreadCount(threads);
            Tensor y;
            net.forwardInto(x, false, y);
            EXPECT_TRUE(bitwiseEqual(base, y))
                << "zoo " << zoo << " threads " << threads;
        }
    }
}

TEST(Quant, ForwardBitwiseIdenticalAcrossTiers)
{
    QuantForceGuard qguard;
    setQuantizeForced(true);

    Rng rng(41);
    Network net = makeMiniVgg(rng);
    const Tensor x = makeInput(net, 2, 42);

    setKernelTier(KernelTier::Portable);
    Tensor base;
    net.forwardInto(x, false, base);
    for (KernelTier tier : supportedKernelTiers()) {
        setKernelTier(tier);
        Tensor y;
        net.forwardInto(x, false, y);
        EXPECT_TRUE(bitwiseEqual(base, y)) << kernelTierName(tier);
    }
    resetKernelTier();
}

TEST(Quant, BatchOneMatchesBatchedRows)
{
    // The FC layer takes a dedicated batch-1 route (qgemm straight
    // into y); it must agree bitwise with the same item inside a
    // batch, because qgemm's per-column math is independent of n.
    QuantForceGuard qguard;
    setQuantizeForced(true);

    Rng rng(51);
    Network net = makeMiniAlexNet(rng);
    const Tensor x = makeInput(net, 1, 52);
    Tensor y1;
    net.forwardInto(x, false, y1);
    Tensor y2;
    net.forwardInto(x, false, y2);
    EXPECT_TRUE(bitwiseEqual(y1, y2));
}

TEST(Quant, ReplicasShareQuantizedPanels)
{
    QuantForceGuard qguard;
    setQuantizeForced(true);

    Rng rng(61);
    Network net = makeMiniAlexNet(rng);
    const Tensor x = makeInput(net, 2, 62);

    // Warm up the base so every shared panel exists before cloning.
    Tensor y;
    net.forwardInto(x, false, y);

    Network replica = net.cloneSharingWeights();
    const std::uint64_t packs = quantPackCount();
    Tensor yr;
    replica.forwardInto(x, false, yr);
    replica.forwardInto(x, false, yr);
    // Replica forwards reuse the shared panels: zero re-quantization.
    EXPECT_EQ(quantPackCount(), packs);
    EXPECT_TRUE(bitwiseEqual(y, yr));
}

TEST(QuantAllocProbe, WarmQuantizedForwardIsAllocFree)
{
    if (!allocCountingEnabled())
        GTEST_SKIP() << "PCNN_COUNT_ALLOCS disabled in this build";

    ThreadCountGuard tguard;
    QuantForceGuard qguard;
    setQuantizeForced(true);

    for (std::size_t threads : {std::size_t(1), std::size_t(2),
                                std::size_t(4)}) {
        setThreadCount(threads);
        for (int zoo = 0; zoo < 3; ++zoo) {
            Rng rng(71);
            Network net = zoo == 0   ? makeMiniAlexNet(rng)
                          : zoo == 1 ? makeMiniVgg(rng)
                                     : makeMiniInception(rng);
            const Tensor x = makeInput(net, 4, 72);
            Tensor y;
            net.forwardInto(x, false, y);
            net.forwardInto(x, false, y);

            ScopedAllocCount probe;
            net.forwardInto(x, false, y);
            EXPECT_EQ(probe.allocs(), 0u)
                << "zoo " << zoo << " threads " << threads;
            EXPECT_EQ(probe.frees(), 0u)
                << "zoo " << zoo << " threads " << threads;
        }
    }
}

TEST(Quant, TrainedTopOneSurvivesQuantization)
{
    SyntheticTaskConfig cfg;
    cfg.difficulty = 0.4;
    cfg.seed = 80;
    SyntheticTask task(cfg);
    Dataset train_set = task.generate(768);
    Dataset test_set = task.generate(192);
    Rng rng(81);
    Network net = makeMiniNet(MiniSize::Medium, rng);
    TrainConfig tc;
    tc.epochs = 4;
    Trainer trainer(net, tc);
    trainer.fit(train_set);

    const Tensor inputs = test_set.batch(0, test_set.size());
    const Tensor fp_logits = net.forward(inputs, false);
    const double fp_acc = accuracy(fp_logits, test_set.labels());

    QuantForceGuard qguard;
    setQuantizeForced(true);
    const Tensor q_logits = net.forward(inputs, false);
    const double q_acc = accuracy(q_logits, test_set.labels());

    // 7-bit activations + per-channel weights keep the top-1 within
    // the entropy-threshold budget the tuner works against.
    EXPECT_GE(q_acc, fp_acc - 0.05)
        << "fp32 " << fp_acc << " int8 " << q_acc;
}

// ---------------------------------------------------- QuantProfile

QuantProfile
sampleProfile()
{
    QuantProfile p;
    p.entries.push_back({"conv1", {0.031f, 64}});
    p.entries.push_back({"fc1", {0.125f, 0}});
    return p;
}

TEST(QuantProfileIo, RoundTrip)
{
    const QuantProfile p = sampleProfile();
    const auto loaded = deserializeQuantProfile(serializeQuantProfile(p));
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->entries.size(), 2u);
    EXPECT_EQ(loaded->entries[0].layer, "conv1");
    EXPECT_EQ(loaded->entries[0].params.scale, 0.031f);
    EXPECT_EQ(loaded->entries[0].params.zero, 64u);
    EXPECT_EQ(loaded->entries[1].layer, "fc1");
    ASSERT_NE(loaded->find("fc1"), nullptr);
    EXPECT_EQ(loaded->find("nope"), nullptr);
}

TEST(QuantProfileIo, FileRoundTrip)
{
    const QuantProfile p = sampleProfile();
    const std::string path = "/tmp/pcnn_quant_profile_test.bin";
    ASSERT_TRUE(saveQuantProfile(p, path));
    const auto loaded = loadQuantProfile(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->entries.size(), 2u);
    std::remove(path.c_str());
    EXPECT_FALSE(loadQuantProfile(path).has_value());
}

TEST(QuantProfileIo, RejectsHostileBytes)
{
    // Truncations at every prefix length must fail cleanly.
    const auto good = serializeQuantProfile(sampleProfile());
    for (std::size_t cut = 0; cut < good.size(); ++cut) {
        std::vector<std::uint8_t> t(good.begin(),
                                    good.begin() + std::ptrdiff_t(cut));
        EXPECT_FALSE(deserializeQuantProfile(t).has_value())
            << "cut " << cut;
    }
    // Wrong magic.
    auto bad = good;
    bad[0] = 'X';
    EXPECT_FALSE(deserializeQuantProfile(bad).has_value());
    // Trailing bytes after a valid payload.
    bad = good;
    bad.push_back(0);
    EXPECT_FALSE(deserializeQuantProfile(bad).has_value());
    // Hostile 2^64-ish string length must not wrap the cursor.
    std::vector<std::uint8_t> wrap(good.begin(), good.begin() + 16);
    for (int i = 0; i < 8; ++i)
        wrap.push_back(0xFF);
    EXPECT_FALSE(deserializeQuantProfile(wrap).has_value());
}

TEST(QuantProfileIo, RejectsBadParams)
{
    auto mutated = [](QuantParams params) {
        QuantProfile p;
        p.entries.push_back({"layer", params});
        return deserializeQuantProfile(serializeQuantProfile(p));
    };
    EXPECT_TRUE(mutated({0.5f, 127}).has_value());
    EXPECT_FALSE(mutated({std::nanf(""), 0}).has_value());
    EXPECT_FALSE(mutated({HUGE_VALF, 0}).has_value());
    EXPECT_FALSE(mutated({0.0f, 0}).has_value());
    EXPECT_FALSE(mutated({-1.0f, 0}).has_value());
    // Zero point beyond the u7 range: the serialized u64 field is
    // patched directly since QuantParams can't even hold it.
    QuantProfile p;
    p.entries.push_back({"z", {1.0f, 127}});
    auto bytes = serializeQuantProfile(p);
    bytes[bytes.size() - 8] = 128;
    EXPECT_FALSE(deserializeQuantProfile(bytes).has_value());
}

TEST(QuantProfileIo, CalibratedProfileAppliesAndRoundTrips)
{
    Rng rng(91);
    Network net = makeMiniAlexNet(rng);
    const Tensor x = makeInput(net, 4, 92);
    const QuantProfile profile = calibrateQuantProfile(net, x);
    // One entry per top-level conv/fc layer.
    EXPECT_EQ(profile.entries.size(),
              net.convLayers().size() + net.fcLayers().size());

    const auto loaded =
        deserializeQuantProfile(serializeQuantProfile(profile));
    ASSERT_TRUE(loaded.has_value());
    applyQuantProfile(net, *loaded);
    for (ConvLayer *c : net.convLayers()) {
        EXPECT_TRUE(c->quantizedEnabled());
        EXPECT_TRUE(c->hasInputQuant());
    }
    // Static ranges: logits are a pure function of the batch, and
    // the route still runs end to end.
    Tensor a, b;
    net.forwardInto(x, false, a);
    net.forwardInto(x, false, b);
    EXPECT_TRUE(bitwiseEqual(a, b));
    net.clearQuantization();
    for (ConvLayer *c : net.convLayers())
        EXPECT_FALSE(c->quantizedEnabled());
}

// ------------------------------------------------------- plan v3

TEST(QuantPlanIo, V3RoundTripPreservesQuantizedFlags)
{
    const OfflineCompiler compiler(jetsonTx1());
    CompiledPlan plan = compiler.compileAtBatch(alexNet(), 2);
    plan.layers[0].kernel.quantized = true;
    plan.layers[2].kernel.quantized = true;

    const auto bytes = serializePlan(plan, 3);
    ASSERT_GE(bytes.size(), 9u);
    EXPECT_EQ(bytes[8], 3u); // v3 discriminated by the version byte

    const auto loaded = deserializePlan(bytes);
    ASSERT_TRUE(loaded.has_value());
    for (std::size_t i = 0; i < plan.layers.size(); ++i)
        EXPECT_EQ(loaded->layers[i].kernel.quantized,
                  plan.layers[i].kernel.quantized)
            << "layer " << i;
}

TEST(QuantPlanIo, V2ReadDefaultsToFp32)
{
    const OfflineCompiler compiler(jetsonTx1());
    CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    plan.layers[0].kernel.quantized = true; // v2 cannot carry this
    const auto bytes = serializePlan(plan, 2);
    EXPECT_EQ(bytes[8], 2u);
    const auto loaded = deserializePlan(bytes);
    ASSERT_TRUE(loaded.has_value());
    for (const LayerSchedule &ls : loaded->layers)
        EXPECT_FALSE(ls.kernel.quantized);
}

TEST(QuantPlanIo, RejectsHostileQuantizedEncoding)
{
    const OfflineCompiler compiler(jetsonTx1());
    CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    const auto off_bytes = serializePlan(plan);
    plan.layers[0].kernel.quantized = true;
    const auto on_bytes = serializePlan(plan);

    // The flag is a u64 0/1; find its low byte by diffing the two
    // serializations, then write an out-of-range value into it.
    ASSERT_EQ(off_bytes.size(), on_bytes.size());
    std::size_t flag_at = std::size_t(-1);
    for (std::size_t i = 0; i < on_bytes.size(); ++i) {
        if (off_bytes[i] != on_bytes[i]) {
            ASSERT_EQ(flag_at, std::size_t(-1)) << "one-byte diff";
            flag_at = i;
        }
    }
    ASSERT_NE(flag_at, std::size_t(-1));
    auto hostile = on_bytes;
    hostile[flag_at] = 2;
    EXPECT_FALSE(deserializePlan(hostile).has_value());
    // Truncating the trailing v3 field must also fail.
    auto truncated = on_bytes;
    truncated.resize(truncated.size() - 4);
    EXPECT_FALSE(deserializePlan(truncated).has_value());
}

// ---------------------------------- tuning table + precision walk

TuningEntry
tableEntry(double time_s, std::vector<std::uint8_t> quant)
{
    TuningEntry e;
    e.positions = {100, 100};
    e.quant = std::move(quant);
    e.predictedTimeS = time_s;
    e.speedup = 1.0 / time_s;
    return e;
}

TEST(QuantTuningTable, AcceptsMonotonePrecisionPath)
{
    TuningTable t;
    t.push(tableEntry(1.0, {0, 0}));
    t.push(tableEntry(0.8, {1, 0}));
    t.push(tableEntry(0.6, {1, 1}));
    // Legacy entries (no precision axis) interoperate.
    t.push(tableEntry(0.5, {}));
    EXPECT_EQ(t.levels(), 4u);
}

TEST(QuantTuningTableDeath, RejectsDequantizedLayer)
{
    TuningTable t;
    t.push(tableEntry(1.0, {1, 0}));
    EXPECT_DEATH(t.push(tableEntry(0.9, {0, 0})), "de-quantized");
    TuningTable u;
    u.push(tableEntry(1.0, {0, 0}));
    EXPECT_DEATH(u.push(tableEntry(0.9, {0})), "layer count");
}

class QuantTunerFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SyntheticTaskConfig cfg;
        cfg.difficulty = 0.4;
        cfg.seed = 70;
        task.emplace(cfg);
        Dataset train_set = task->generate(768);
        rng.emplace(71);
        net.emplace(makeMiniNet(MiniSize::Medium, *rng));
        TrainConfig tc;
        tc.epochs = 4;
        Trainer trainer(*net, tc);
        trainer.fit(train_set);
        const OfflineCompiler compiler(jetsonTx1());
        plan = compiler.compileAtBatch(describe(*net), 64);
    }

    std::optional<SyntheticTask> task;
    std::optional<Rng> rng;
    std::optional<Network> net;
    CompiledPlan plan;
};

TEST_F(QuantTunerFixture, PrecisionAxisJoinsTheGreedyWalk)
{
    TunerConfig cfg;
    cfg.entropyThreshold = 1.4;
    cfg.allowQuantize = true;
    const AccuracyTuner tuner(jetsonTx1(), cfg);
    const Dataset tune_data = task->generate(128);
    const TuningTable table = tuner.tuneNetwork(
        *net, plan, tune_data.batch(0, tune_data.size()));

    ASSERT_GE(table.levels(), 2u) << "tuner never moved";
    bool flipped = false;
    for (std::size_t i = 0; i < table.levels(); ++i) {
        const TuningEntry &e = table.entry(i);
        ASSERT_EQ(e.quant.size(), e.positions.size());
        if (i > 0) {
            EXPECT_LT(e.predictedTimeS,
                      table.entry(i - 1).predictedTimeS);
            for (std::size_t l = 0; l < e.quant.size(); ++l)
                EXPECT_GE(e.quant[l], table.entry(i - 1).quant[l]);
        }
        flipped = flipped || e.adjustedPrecision;
    }
    // An int8 flip halves a layer's modeled time at near-zero
    // entropy cost, so the TE metric must pick at least one.
    EXPECT_TRUE(flipped);

    // The tuner leaves the network exact afterwards.
    for (ConvLayer *c : net->convLayers()) {
        EXPECT_FALSE(c->perforated());
        EXPECT_FALSE(c->quantizedEnabled());
    }
}

TEST_F(QuantTunerFixture, PrecisionAxisOffKeepsLegacyEntries)
{
    TunerConfig cfg;
    cfg.entropyThreshold = 1.4;
    const AccuracyTuner tuner(jetsonTx1(), cfg);
    const Dataset tune_data = task->generate(128);
    const TuningTable table = tuner.tuneNetwork(
        *net, plan, tune_data.batch(0, tune_data.size()));
    for (std::size_t i = 0; i < table.levels(); ++i) {
        EXPECT_TRUE(table.entry(i).quant.empty());
        EXPECT_FALSE(table.entry(i).adjustedPrecision);
    }
}

TEST(QuantTuner, Int8SpeedupPricesLayerTime)
{
    const OfflineCompiler compiler(jetsonTx1());
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    TunerConfig cfg;
    cfg.int8Speedup = 2.0;
    const AccuracyTuner tuner(jetsonTx1(), cfg);
    const double fp = tuner.layerTimeAt(plan, 0, 0);
    const double q = tuner.layerTimeAt(plan, 0, 0, true);
    EXPECT_NEAR(q, fp / 2.0, fp * 1e-12);

    // A sub-1x factor is clamped: "quantized" never prices slower.
    TunerConfig bad = cfg;
    bad.int8Speedup = 0.25;
    const AccuracyTuner clamped(jetsonTx1(), bad);
    EXPECT_LE(clamped.layerTimeAt(plan, 0, 0, true), fp * (1 + 1e-12));
}

TEST(QuantExecutor, PlanV3FlagsReachTheLayers)
{
    Rng rng(95);
    Network net = makeMiniAlexNet(rng);
    const GpuSpec gpu = jetsonTx1();
    const OfflineCompiler compiler(gpu);
    CompiledPlan plan = compiler.compileAtBatch(describe(net), 1);
    plan.layers[0].kernel.quantized = true;

    const Executor exec(net, plan, gpu);
    const auto &convs = net.convLayers();
    EXPECT_TRUE(convs[0]->quantizedEnabled());
    for (std::size_t i = 1; i < convs.size(); ++i)
        EXPECT_FALSE(convs[i]->quantizedEnabled());
    net.clearQuantization();
}

} // namespace
} // namespace pcnn
