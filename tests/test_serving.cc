/**
 * @file
 * Tests for the request-stream serving simulator: conservation,
 * determinism, batching trade-offs, and load behaviour.
 */

#include <gtest/gtest.h>

#include "nn/model_zoo.hh"
#include "pcnn/runtime/serving_sim.hh"

namespace pcnn {
namespace {

class ServingFixture : public ::testing::Test
{
  protected:
    ServingFixture() : sim(k20c(), alexNet())
    {
        req = inferRequirement(ageDetectionApp());
    }

    ServingConfig
    base() const
    {
        ServingConfig cfg;
        cfg.arrivalRateHz = 20.0;
        cfg.durationS = 10.0;
        cfg.seed = 5;
        return cfg;
    }

    ServingSimulator sim;
    UserRequirement req;
};

TEST_F(ServingFixture, ServesEveryRequest)
{
    const ServingStats s = sim.run(base(), req);
    EXPECT_GT(s.requests, 100u); // ~200 expected at 20 Hz x 10 s
    EXPECT_GE(s.batches, 1u);
    EXPECT_GT(s.meanLatencyS, 0.0);
    EXPECT_LE(s.p50LatencyS, s.p95LatencyS);
    EXPECT_LE(s.p95LatencyS, s.p99LatencyS);
    EXPECT_GT(s.busyFraction, 0.0);
    EXPECT_LE(s.busyFraction, 1.0);
}

TEST_F(ServingFixture, Deterministic)
{
    const ServingStats a = sim.run(base(), req);
    const ServingStats b = sim.run(base(), req);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_DOUBLE_EQ(a.meanLatencyS, b.meanLatencyS);
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
}

TEST_F(ServingFixture, SeedChangesStream)
{
    ServingConfig cfg = base();
    cfg.seed = 6;
    const ServingStats a = sim.run(base(), req);
    const ServingStats b = sim.run(cfg, req);
    EXPECT_NE(a.requests, b.requests);
}

TEST_F(ServingFixture, LatencyAtLeastServiceTime)
{
    const ServingStats s = sim.run(base(), req);
    // Even the median includes at least one batch execution.
    EXPECT_GT(s.p50LatencyS, 0.001);
}

TEST_F(ServingFixture, BatchingRaisesLatencyAtLowLoad)
{
    ServingConfig single = base();
    single.arrivalRateHz = 2.0; // sparse stream
    ServingConfig batched = single;
    batched.maxBatch = 16;
    batched.maxWaitS = 0.5; // wait up to half a second to fill

    const ServingStats s1 = sim.run(single, req);
    const ServingStats s16 = sim.run(batched, req);
    // Waiting for companions that rarely come inflates latency...
    EXPECT_GT(s16.p95LatencyS, s1.p95LatencyS * 2.0);
    // ...and mean SoC_time suffers accordingly.
    EXPECT_LE(s16.meanSocTime, s1.meanSocTime + 1e-12);
}

TEST_F(ServingFixture, BatchingSavesEnergyAtHighLoad)
{
    ServingConfig single = base();
    single.arrivalRateHz = 150.0;
    single.durationS = 4.0;
    ServingConfig batched = single;
    batched.maxBatch = 32;
    batched.maxWaitS = 0.05;

    const ServingStats s1 = sim.run(single, req);
    const ServingStats s32 = sim.run(batched, req);
    EXPECT_LT(s32.energyPerImageJ, s1.energyPerImageJ);
    EXPECT_GT(s32.meanBatch, 4.0);
    EXPECT_LT(s32.busyFraction, s1.busyFraction);
}

TEST_F(ServingFixture, OverloadShowsQueueing)
{
    // Single-request serving at a rate beyond the service rate: the
    // queue builds and tail latency explodes relative to light load.
    ServingConfig light = base();
    light.arrivalRateHz = 5.0;
    ServingConfig heavy = base();
    heavy.arrivalRateHz = 400.0;
    heavy.durationS = 3.0;

    const ServingStats l = sim.run(light, req);
    const ServingStats h = sim.run(heavy, req);
    EXPECT_GT(h.p99LatencyS, l.p99LatencyS * 3.0);
    EXPECT_GT(h.busyFraction, 0.9);
}

TEST_F(ServingFixture, RealTimeRequirementCountsViolations)
{
    const UserRequirement rt =
        inferRequirement(videoSurveillanceApp());
    ServingConfig cfg = base();
    cfg.maxBatch = 64;
    cfg.maxWaitS = 1.0; // absurd batching for a real-time stream
    const ServingStats s = sim.run(cfg, rt);
    EXPECT_GT(s.satisfactionViolations, s.requests / 2);
}

TEST_F(ServingFixture, TailPercentilesAreOrdered)
{
    const ServingStats s = sim.run(base(), req);
    EXPECT_LE(s.p50LatencyS, s.p95LatencyS);
    EXPECT_LE(s.p95LatencyS, s.p99LatencyS);
    EXPECT_LE(s.p99LatencyS, s.p999LatencyS);
    EXPECT_GT(s.p999LatencyS, 0.0);
}

TEST_F(ServingFixture, BatchHistogramAccountsForEveryRequest)
{
    ServingConfig cfg = base();
    cfg.maxBatch = 8;
    cfg.maxWaitS = 0.05;
    const ServingStats s = sim.run(cfg, req);
    EXPECT_EQ(s.batchHist.batches(), s.batches);
    EXPECT_EQ(s.batchHist.images(), s.requests);
    EXPECT_DOUBLE_EQ(s.batchHist.meanBatch(), s.meanBatch);
    // No recorded batch exceeds the policy ceiling.
    EXPECT_LE(s.batchHist.counts.size(), cfg.maxBatch + 1);
}

TEST(Histogram, PercentileInterpolatesLinearly)
{
    const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 0.875), 4.5);
}

TEST(Histogram, SummaryMatchesHandComputation)
{
    const LatencySummary s =
        summarizeLatencies({0.4, 0.1, 0.3, 0.2});
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.meanS, 0.25);
    EXPECT_DOUBLE_EQ(s.minS, 0.1);
    EXPECT_DOUBLE_EQ(s.maxS, 0.4);
    EXPECT_DOUBLE_EQ(s.p50S, 0.25);
    const LatencySummary empty = summarizeLatencies({});
    EXPECT_EQ(empty.count, 0u);
    EXPECT_EQ(empty.p999S, 0.0);
}

TEST(Histogram, BatchSizeHistogramCounts)
{
    BatchSizeHistogram h;
    EXPECT_EQ(h.batches(), 0u);
    EXPECT_EQ(h.meanBatch(), 0.0);
    h.record(1);
    h.record(4);
    h.record(4);
    EXPECT_EQ(h.batches(), 3u);
    EXPECT_EQ(h.images(), 9u);
    EXPECT_DOUBLE_EQ(h.meanBatch(), 3.0);
    EXPECT_EQ(h.counts[4], 2u);
}

} // namespace
} // namespace pcnn
