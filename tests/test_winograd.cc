/**
 * @file
 * Tests for the winograd F(2x2,3x3) conv route and its dispatch
 * plumbing: numerical agreement with a direct-convolution reference
 * under a declared tolerance budget, bitwise determinism across
 * thread counts, odd-extent edge tiles, grouped convolution, the
 * pre-transformed weight cache's generation protocol, and the
 * precedence rules of effectiveAlgo() (force > pin > cost model,
 * training/perforation always exact).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/parallel.hh"
#include "common/random.hh"
#include "nn/conv_layer.hh"
#include "nn/fusion.hh"
#include "tensor/tensor.hh"
#include "tensor/winograd.hh"
#include "tolerance.hh"

namespace pcnn {
namespace {

// Budget for winograd vs. a double-accumulated direct convolution:
// the transform evaluates the same sums in a different association
// order, so roundoff differs by a few ULPs per element — and near
// zero the float-accumulated routes see catastrophic cancellation
// the double reference does not, hence the absolute floor (elements
// below it are judged on absolute error / floor instead). 1e-3
// relative with a 1e-2 floor means ~0.1% on well-scaled values and
// 1e-5 absolute near zero; a transform or tiling bug overshoots
// both by orders of magnitude. EXPERIMENTS.md documents the budget.
constexpr double kWinoRelBudget = 1e-3;
constexpr double kAbsFloor = 1e-2;

ConvLayer
makeConv(Rng &rng, std::size_t in_c, std::size_t out_c,
         std::size_t kernel, std::size_t stride, std::size_t pad,
         std::size_t h, std::size_t w, std::size_t groups = 1)
{
    ConvSpec s;
    s.name = "w";
    s.inC = in_c;
    s.outC = out_c;
    s.kernel = kernel;
    s.stride = stride;
    s.pad = pad;
    s.inH = h;
    s.inW = w;
    s.groups = groups;
    return ConvLayer(s, rng);
}

Tensor
randomInput(std::size_t n, std::size_t c, std::size_t h,
            std::size_t w, std::uint64_t seed)
{
    Tensor x(n, c, h, w);
    Rng rng(seed);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = float(rng.uniform(-1.0, 1.0));
    return x;
}

/**
 * Direct 7-loop convolution with double accumulation: independent of
 * every lowering under test (no im2col, no SGEMM, no transforms).
 */
Tensor
directReference(ConvLayer &layer, const Tensor &x)
{
    const ConvSpec &s = layer.spec();
    const std::size_t in_cg = s.inC / s.groups;
    const std::size_t out_cg = s.outC / s.groups;
    const std::size_t oh = s.outH(), ow = s.outW();
    const Tensor &wt = layer.params()[0]->value;
    const Tensor &b = layer.params()[1]->value;
    Tensor y(x.shape().n, s.outC, oh, ow);
    for (std::size_t item = 0; item < x.shape().n; ++item)
        for (std::size_t g = 0; g < s.groups; ++g)
            for (std::size_t oc = 0; oc < out_cg; ++oc) {
                const float *wk =
                    wt.data() + (g * out_cg + oc) * in_cg *
                                    s.kernel * s.kernel;
                float *yp =
                    y.data() +
                    ((item * s.outC + g * out_cg + oc) * oh) * ow;
                for (std::size_t oy = 0; oy < oh; ++oy)
                    for (std::size_t ox = 0; ox < ow; ++ox) {
                        double acc = b[g * out_cg + oc];
                        for (std::size_t ic = 0; ic < in_cg; ++ic)
                            for (std::size_t ky = 0; ky < s.kernel;
                                 ++ky)
                                for (std::size_t kx = 0;
                                     kx < s.kernel; ++kx) {
                                    const std::ptrdiff_t iy =
                                        std::ptrdiff_t(
                                            oy * s.stride + ky) -
                                        std::ptrdiff_t(s.pad);
                                    const std::ptrdiff_t ix =
                                        std::ptrdiff_t(
                                            ox * s.stride + kx) -
                                        std::ptrdiff_t(s.pad);
                                    if (iy < 0 ||
                                        iy >= std::ptrdiff_t(s.inH) ||
                                        ix < 0 ||
                                        ix >= std::ptrdiff_t(s.inW))
                                        continue;
                                    acc +=
                                        double(wk[(ic * s.kernel +
                                                   ky) *
                                                      s.kernel +
                                                  kx]) *
                                        double(
                                            x[((item * s.inC +
                                                g * in_cg + ic) *
                                                   s.inH +
                                               std::size_t(iy)) *
                                                  s.inW +
                                              std::size_t(ix)]);
                                }
                        yp[oy * ow + ox] = float(acc);
                    }
            }
    return y;
}

// --------------------------------------------- numerical agreement

/**
 * Winograd output within budget of the direct reference across a
 * shape sweep that exercises even grids, odd-extent tail tiles in
 * both axes, rectangular inputs, and pad-0 geometries. The im2col
 * route is held to the same budget as a cross-check of the
 * reference itself.
 */
TEST(Winograd, MatchesDirectReferenceAcrossShapes)
{
    clearForcedConvAlgo();
    struct Case
    {
        std::size_t h, w, pad;
    };
    const Case cases[] = {{8, 8, 1}, {7, 7, 1}, {9, 5, 1},
                          {6, 6, 0}, {5, 5, 0}, {4, 4, 1},
                          {3, 3, 1}};
    for (const Case &c : cases) {
        Rng rng(100 + c.h * 10 + c.w + c.pad);
        ConvLayer layer = makeConv(rng, 5, 7, 3, 1, c.pad, c.h, c.w);
        ASSERT_TRUE(layer.spec().algoEligible(ConvAlgo::Winograd));
        const Tensor x = randomInput(2, 5, c.h, c.w, 7 * c.h + c.w);
        const Tensor want = directReference(layer, x);

        layer.setAlgo(ConvAlgo::Winograd);
        const Tensor wino = layer.forward(x, false);
        EXPECT_TRUE(
            allClose(want, wino, kWinoRelBudget, kAbsFloor))
            << "winograd h=" << c.h << " w=" << c.w
            << " pad=" << c.pad;

        layer.setAlgo(ConvAlgo::Im2col);
        const Tensor exact = layer.forward(x, false);
        EXPECT_TRUE(
            allClose(want, exact, kWinoRelBudget, kAbsFloor))
            << "im2col h=" << c.h << " w=" << c.w
            << " pad=" << c.pad;
    }
}

/** Grouped winograd transforms each group's channel slice alone. */
TEST(Winograd, GroupedMatchesDirectReference)
{
    clearForcedConvAlgo();
    Rng rng(41);
    ConvLayer layer =
        makeConv(rng, 6, 8, 3, 1, 1, 7, 7, /*groups=*/2);
    layer.setAlgo(ConvAlgo::Winograd);
    const Tensor x = randomInput(3, 6, 7, 7, 42);
    const Tensor want = directReference(layer, x);
    const Tensor got = layer.forward(x, false);
    EXPECT_TRUE(allClose(want, got, kWinoRelBudget, kAbsFloor));
}

// ------------------------------------------------------ determinism

/**
 * The winograd route honors the substrate's determinism contract:
 * bitwise-identical output at every PCNN_THREADS value (tiles are
 * disjoint, per-tile accumulation is a pure k-walk).
 */
TEST(Winograd, BitwiseIdenticalAcrossThreadCounts)
{
    clearForcedConvAlgo();
    Rng rng(55);
    ConvLayer layer = makeConv(rng, 8, 6, 3, 1, 1, 9, 7);
    layer.setAlgo(ConvAlgo::Winograd);
    const Tensor x = randomInput(2, 8, 9, 7, 56);

    const std::size_t saved = threadCount();
    setThreadCount(1);
    const Tensor base = layer.forward(x, false);
    for (std::size_t threads : {2u, 4u}) {
        setThreadCount(threads);
        const Tensor got = layer.forward(x, false);
        ASSERT_EQ(base.size(), got.size());
        for (std::size_t i = 0; i < base.size(); ++i)
            EXPECT_EQ(base[i], got[i])
                << "threads=" << threads << " i=" << i;
    }
    setThreadCount(saved);
}

// ------------------------------------------- weight-cache protocol

/**
 * The pre-transformed U^T panels must notice weight updates via the
 * Param generation counter: warm the cache, perturb the weights,
 * and the next forward must track the new values (a stale panel
 * would be off by the perturbation, far beyond the budget).
 */
TEST(Winograd, WeightUpdateInvalidatesTransformCache)
{
    clearForcedConvAlgo();
    Rng rng(61);
    ConvLayer layer = makeConv(rng, 4, 4, 3, 1, 1, 8, 8);
    layer.setAlgo(ConvAlgo::Winograd);
    const Tensor x = randomInput(1, 4, 8, 8, 62);
    (void)layer.forward(x, false); // warm the transform cache

    Param *w = layer.params()[0];
    for (std::size_t i = 0; i < w->value.size(); i += 3)
        w->value[i] += 0.5f;
    w->markUpdated();

    const Tensor want = directReference(layer, x);
    const Tensor got = layer.forward(x, false);
    EXPECT_TRUE(allClose(want, got, kWinoRelBudget, kAbsFloor));
}

// --------------------------------------------- dispatch precedence

TEST(Winograd, EligibilityPredicates)
{
    Rng rng(71);
    const ConvLayer k3 = makeConv(rng, 4, 4, 3, 1, 1, 8, 8);
    EXPECT_TRUE(k3.spec().algoEligible(ConvAlgo::Im2col));
    EXPECT_FALSE(k3.spec().algoEligible(ConvAlgo::Direct1x1));
    EXPECT_TRUE(k3.spec().algoEligible(ConvAlgo::Winograd));

    const ConvLayer k3s2 = makeConv(rng, 4, 4, 3, 2, 1, 8, 8);
    EXPECT_FALSE(k3s2.spec().algoEligible(ConvAlgo::Winograd));

    const ConvLayer k1 = makeConv(rng, 4, 4, 1, 1, 0, 8, 8);
    EXPECT_TRUE(k1.spec().algoEligible(ConvAlgo::Direct1x1));
    EXPECT_FALSE(k1.spec().algoEligible(ConvAlgo::Winograd));

    const ConvLayer k5 = makeConv(rng, 4, 4, 5, 1, 2, 8, 8);
    EXPECT_FALSE(k5.spec().algoEligible(ConvAlgo::Winograd));
    EXPECT_FALSE(k5.spec().algoEligible(ConvAlgo::Direct1x1));
}

/** Training and perforated forwards always take the exact route. */
TEST(Winograd, TrainingAndPerforationForceExactRoute)
{
    clearForcedConvAlgo();
    Rng rng(81);
    ConvLayer layer = makeConv(rng, 4, 4, 3, 1, 1, 8, 8);
    layer.setAlgo(ConvAlgo::Winograd);
    EXPECT_EQ(layer.effectiveAlgo(false), ConvAlgo::Winograd);
    EXPECT_EQ(layer.effectiveAlgo(true), ConvAlgo::Im2col);

    layer.setComputedPositions(layer.fullPositions() / 2);
    EXPECT_EQ(layer.effectiveAlgo(false), ConvAlgo::Im2col);
    layer.setComputedPositions(0); // back to the full grid
    EXPECT_EQ(layer.effectiveAlgo(false), ConvAlgo::Winograd);
}

/** Force beats pin beats cost model; force skips ineligible layers. */
TEST(Winograd, ForcedAlgoPrecedence)
{
    Rng rng(91);
    ConvLayer layer = makeConv(rng, 4, 4, 3, 1, 1, 8, 8);
    layer.setAlgo(ConvAlgo::Im2col);

    setForcedConvAlgo(ConvAlgo::Winograd);
    EXPECT_EQ(layer.effectiveAlgo(false), ConvAlgo::Winograd);

    ConvLayer big = makeConv(rng, 4, 4, 5, 1, 2, 8, 8);
    EXPECT_EQ(big.effectiveAlgo(false), ConvAlgo::Im2col)
        << "force must not apply to an ineligible geometry";

    clearForcedConvAlgo();
    EXPECT_EQ(layer.effectiveAlgo(false), ConvAlgo::Im2col);
}

/** The forced route still computes the right numbers. */
TEST(Winograd, ForcedWinogradMatchesReference)
{
    Rng rng(95);
    ConvLayer layer = makeConv(rng, 4, 6, 3, 1, 1, 7, 7);
    const Tensor x = randomInput(2, 4, 7, 7, 96);
    const Tensor want = directReference(layer, x);

    setForcedConvAlgo(ConvAlgo::Winograd);
    const Tensor got = layer.forward(x, false);
    clearForcedConvAlgo();
    EXPECT_TRUE(allClose(want, got, kWinoRelBudget, kAbsFloor));
}

// ------------------------------------------------------ cost model

TEST(Winograd, CostModelSelectsEligibleAlgo)
{
    Rng rng(99);
    // Pure channel mixer: the 1x1 shortcut is free and exact.
    EXPECT_EQ(selectConvAlgo(
                  makeConv(rng, 16, 16, 1, 1, 0, 8, 8).spec()),
              ConvAlgo::Direct1x1);
    // Deep 3x3 stride-1: winograd's 2.25x MAC saving dominates the
    // transform overhead by orders of magnitude at this size.
    EXPECT_EQ(selectConvAlgo(
                  makeConv(rng, 64, 64, 3, 1, 1, 56, 56).spec()),
              ConvAlgo::Winograd);
    // Strided large kernel: only im2col is eligible.
    EXPECT_EQ(selectConvAlgo(
                  makeConv(rng, 3, 32, 11, 4, 0, 227, 227).spec()),
              ConvAlgo::Im2col);
    // Whatever it picks must be eligible for the geometry.
    const ConvSpec s = makeConv(rng, 2, 2, 3, 1, 1, 4, 4).spec();
    EXPECT_TRUE(s.algoEligible(selectConvAlgo(s)));
}

/** Tile-count helpers agree with the clipped-tile definition. */
TEST(Winograd, TileGeometryHelpers)
{
    Rng rng(103);
    const ConvSpec even = makeConv(rng, 2, 2, 3, 1, 1, 8, 8).spec();
    EXPECT_EQ(even.outH(), 8u);
    EXPECT_EQ(even.winogradTiles(), 4u * 4u);

    const ConvSpec odd = makeConv(rng, 2, 2, 3, 1, 1, 7, 5).spec();
    EXPECT_EQ(odd.outH(), 7u);
    EXPECT_EQ(odd.outW(), 5u);
    EXPECT_EQ(odd.winogradTiles(), 4u * 3u);

    const GemmShape g = odd.winogradGemmShape(3);
    EXPECT_EQ(g.m, 3u * 4u * 3u);
    EXPECT_EQ(g.n, 2u);
    EXPECT_EQ(g.k, 2u);
}

} // namespace
} // namespace pcnn
