/**
 * @file
 * Unit tests for the train module: loss, SGD, and end-to-end
 * convergence of MiniNets on the synthetic task.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hh"
#include "nn/model_zoo.hh"
#include "train/loss.hh"
#include "train/sgd.hh"
#include "train/trainer.hh"

namespace pcnn {
namespace {

TEST(Loss, UniformLogitsGiveLogK)
{
    Tensor logits(2, 4, 1, 1); // all zero -> uniform softmax
    const double loss = softmaxCrossEntropy(logits, {0, 3});
    EXPECT_NEAR(loss, std::log(4.0), 1e-6);
}

TEST(Loss, ConfidentCorrectIsSmall)
{
    Tensor logits(1, 3, 1, 1);
    logits[0] = 10.0f;
    EXPECT_LT(softmaxCrossEntropy(logits, {0}), 0.01);
    EXPECT_GT(softmaxCrossEntropy(logits, {1}), 5.0);
}

TEST(Loss, GradientSumsToZeroPerRow)
{
    Tensor logits(2, 5, 1, 1);
    Rng rng(1);
    logits.fillGaussian(rng, 0, 2);
    Tensor d;
    softmaxCrossEntropy(logits, {1, 4}, &d);
    for (std::size_t i = 0; i < 2; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < 5; ++j)
            s += d.data()[i * 5 + j];
        EXPECT_NEAR(s, 0.0, 1e-6);
    }
}

TEST(Loss, GradientMatchesNumeric)
{
    Tensor logits(1, 4, 1, 1);
    Rng rng(2);
    logits.fillGaussian(rng, 0, 1);
    Tensor d;
    softmaxCrossEntropy(logits, {2}, &d);
    const float eps = 1e-3f;
    for (std::size_t j = 0; j < 4; ++j) {
        const float orig = logits[j];
        logits[j] = orig + eps;
        const double up = softmaxCrossEntropy(logits, {2});
        logits[j] = orig - eps;
        const double dn = softmaxCrossEntropy(logits, {2});
        logits[j] = orig;
        EXPECT_NEAR(d[j], (up - dn) / (2 * eps), 1e-4);
    }
}

TEST(Loss, AccuracyCounting)
{
    Tensor logits(3, 2, 1, 1);
    logits[0] = 1;
    logits[1] = 0; // pred 0
    logits[2] = 0;
    logits[3] = 1; // pred 1
    logits[4] = 1;
    logits[5] = 0; // pred 0
    EXPECT_NEAR(accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
}

TEST(Sgd, MovesAgainstGradient)
{
    Param p;
    p.value.resize(Shape{1, 1, 1, 2});
    p.grad.resize(p.value.shape());
    p.value[0] = 1.0f;
    p.grad[0] = 1.0f; // positive gradient -> value must decrease
    SgdConfig cfg;
    cfg.momentum = 0.0;
    cfg.weightDecay = 0.0;
    cfg.learningRate = 0.1;
    SgdOptimizer opt(cfg);
    opt.step({&p});
    EXPECT_NEAR(p.value[0], 0.9f, 1e-6);
}

TEST(Sgd, MomentumAccumulates)
{
    Param p;
    p.value.resize(Shape{1, 1, 1, 1});
    p.grad.resize(p.value.shape());
    SgdConfig cfg;
    cfg.momentum = 0.9;
    cfg.weightDecay = 0.0;
    cfg.learningRate = 0.1;
    SgdOptimizer opt(cfg);
    p.grad[0] = 1.0f;
    opt.step({&p}); // v = -0.1
    const float after_one = p.value[0];
    p.grad[0] = 1.0f;
    opt.step({&p}); // v = -0.19
    EXPECT_LT(p.value[0] - after_one, after_one - 0.0f);
    EXPECT_NEAR(p.value[0], -0.29f, 1e-5);
}

TEST(Sgd, WeightDecayShrinksWeights)
{
    Param p;
    p.value.resize(Shape{1, 1, 1, 1});
    p.grad.resize(p.value.shape());
    p.value[0] = 1.0f;
    SgdConfig cfg;
    cfg.momentum = 0.0;
    cfg.weightDecay = 0.1;
    cfg.learningRate = 1.0;
    SgdOptimizer opt(cfg);
    opt.step({&p}); // grad 0, decay pulls toward zero
    EXPECT_NEAR(p.value[0], 0.9f, 1e-6);
}

TEST(Sgd, LearningRateDecay)
{
    SgdOptimizer opt(SgdConfig{});
    const double lr0 = opt.learningRate();
    opt.scaleLearningRate(0.5);
    EXPECT_NEAR(opt.learningRate(), lr0 * 0.5, 1e-12);
}

// ------------------------------------------------------- convergence

TEST(Trainer, LearnsEasySyntheticTask)
{
    SyntheticTaskConfig cfg;
    cfg.difficulty = 0.3;
    cfg.seed = 11;
    SyntheticTask task(cfg);
    Dataset train_set = task.generate(1024);
    Dataset test_set = task.generate(256);

    Rng rng(12);
    Network net = makeMiniNet(MiniSize::Medium, rng);
    TrainConfig tc;
    tc.epochs = 5;
    Trainer trainer(net, tc);
    const auto history = trainer.fit(train_set);

    // Loss falls across training.
    EXPECT_LT(history.back().trainLoss, history.front().trainLoss);

    const EvalResult r = trainer.evaluate(test_set);
    EXPECT_GT(r.accuracy, 0.8) << "failed to learn the easy task";
    // Entropy of a confident classifier is well under uniform log(8).
    EXPECT_LT(r.meanEntropy, 1.2);
}

TEST(Trainer, UntrainedIsChanceLevel)
{
    SyntheticTaskConfig cfg;
    cfg.seed = 13;
    SyntheticTask task(cfg);
    Dataset test_set = task.generate(256);
    Rng rng(14);
    Network net = makeMiniNet(MiniSize::Small, rng);
    Trainer trainer(net, TrainConfig{});
    const EvalResult r = trainer.evaluate(test_set);
    EXPECT_LT(r.accuracy, 0.35); // 8 classes -> chance is 0.125
}

TEST(Trainer, HarderTaskLowerAccuracy)
{
    auto run = [](double difficulty) {
        SyntheticTaskConfig cfg;
        cfg.difficulty = difficulty;
        cfg.seed = 15;
        SyntheticTask task(cfg);
        Dataset train_set = task.generate(768);
        Dataset test_set = task.generate(256);
        Rng rng(16);
        Network net = makeMiniNet(MiniSize::Small, rng);
        TrainConfig tc;
        tc.epochs = 4;
        Trainer trainer(net, tc);
        trainer.fit(train_set);
        return trainer.evaluate(test_set).accuracy;
    };
    EXPECT_GT(run(0.2), run(4.0) + 0.1);
}

} // namespace
} // namespace pcnn
