/**
 * @file
 * Tests for the inference ReLU-folding peephole and the fused SGEMM
 * epilogues behind it. The folding contract (DESIGN.md §5e): at
 * inference, a Conv/Fc layer followed by a ReLU layer runs its
 * fused-epilogue forward and the ReLU layer is skipped; the result
 * is BITWISE identical to the unfolded pair, because the epilogue
 * clamps exactly the sums the separate ReLU pass would have seen.
 * Training-mode forwards never fold (the ReLU layer must cache its
 * mask for backward).
 */

#include <gtest/gtest.h>

#include <cstddef>

#include "common/random.hh"
#include "nn/conv_layer.hh"
#include "nn/fc_layer.hh"
#include "nn/fusion.hh"
#include "nn/model_zoo.hh"
#include "nn/network.hh"
#include "nn/relu_layer.hh"
#include "tensor/tensor.hh"
#include "tolerance.hh"
#include "train/sgd.hh"

namespace pcnn {
namespace {

/** Restore process-wide fusion toggles whatever the test does. */
struct ToggleGuard
{
    ~ToggleGuard()
    {
        setReluFolding(true);
        clearForcedConvAlgo();
    }
};

ConvSpec
convSpec(std::size_t in_c, std::size_t out_c, std::size_t kernel,
         std::size_t stride, std::size_t pad, std::size_t hw)
{
    ConvSpec s;
    s.name = "c";
    s.inC = in_c;
    s.outC = out_c;
    s.kernel = kernel;
    s.stride = stride;
    s.pad = pad;
    s.inH = hw;
    s.inW = hw;
    return s;
}

Tensor
randomInput(std::size_t n, std::size_t c, std::size_t h,
            std::size_t w, std::uint64_t seed)
{
    Tensor x(n, c, h, w);
    Rng rng(seed);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = float(rng.uniform(-1.0, 1.0));
    return x;
}

void
expectBitwise(const Tensor &want, const Tensor &got,
              const char *what)
{
    ASSERT_EQ(want.size(), got.size()) << what;
    for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_EQ(want[i], got[i]) << what << " i=" << i;
}

/** Folded vs. unfolded conv+relu on one pinned algorithm. */
void
checkConvReluFold(ConvAlgo algo, std::size_t kernel,
                  std::size_t pad)
{
    ToggleGuard guard;
    clearForcedConvAlgo();
    Rng rng(7 + std::size_t(algo));
    Network net("t", Shape{1, 4, 8, 8});
    net.add<ConvLayer>(convSpec(4, 6, kernel, 1, pad, 8), rng);
    net.add<ReluLayer>("relu0");
    net.convLayers()[0]->setAlgo(algo);

    const Tensor x = randomInput(2, 4, 8, 8, 11);
    setReluFolding(false);
    const Tensor unfolded = net.forward(x, false);
    setReluFolding(true);
    const Tensor folded = net.forward(x, false);
    expectBitwise(unfolded, folded, convAlgoName(algo));

    // The clamp really ran: a ReLU'd output has no negatives.
    for (std::size_t i = 0; i < folded.size(); ++i)
        ASSERT_GE(folded[i], 0.0f) << "i=" << i;
}

TEST(Fusion, ConvReluFoldBitwiseIm2col)
{
    checkConvReluFold(ConvAlgo::Im2col, 3, 1);
}

TEST(Fusion, ConvReluFoldBitwiseDirect1x1)
{
    checkConvReluFold(ConvAlgo::Direct1x1, 1, 0);
}

TEST(Fusion, ConvReluFoldBitwiseWinograd)
{
    // Winograd computes the same sums pre-clamp in its own order, so
    // folded-vs-unfolded is bitwise *within* the winograd route too.
    checkConvReluFold(ConvAlgo::Winograd, 3, 1);
}

TEST(Fusion, FcReluFoldBitwise)
{
    ToggleGuard guard;
    Rng rng(21);
    Network net("t", Shape{1, 3, 4, 4});
    net.add<FcLayer>("fc0", 3 * 4 * 4, 10, rng);
    net.add<ReluLayer>("relu0");

    const Tensor x = randomInput(3, 3, 4, 4, 22);
    setReluFolding(false);
    const Tensor unfolded = net.forward(x, false);
    setReluFolding(true);
    const Tensor folded = net.forward(x, false);
    expectBitwise(unfolded, folded, "fc");
    for (std::size_t i = 0; i < folded.size(); ++i)
        ASSERT_GE(folded[i], 0.0f);
}

/**
 * A folded pair inside a whole network: MiniVgg has conv+relu and
 * fc+relu pairs plus pooling between them. Pinning the exact
 * algorithm keeps the comparison bitwise end to end.
 */
TEST(Fusion, MiniVggFoldedVsUnfoldedBitwiseOnExactRoute)
{
    ToggleGuard guard;
    setForcedConvAlgo(ConvAlgo::Im2col);
    Rng rng(31);
    Network net = makeMiniVgg(rng);
    const Tensor x = randomInput(2, 1, 16, 16, 32);

    setReluFolding(false);
    const Tensor unfolded = net.forward(x, false);
    setReluFolding(true);
    const Tensor folded = net.forward(x, false);
    expectBitwise(unfolded, folded, "minivgg");
}

/** Same end-to-end check under cost-model dispatch: tolerance. */
TEST(Fusion, MiniVggFoldedVsUnfoldedAutoDispatch)
{
    ToggleGuard guard;
    clearForcedConvAlgo();
    Rng rng(35);
    Network net = makeMiniVgg(rng);
    const Tensor x = randomInput(2, 1, 16, 16, 36);

    setReluFolding(false);
    const Tensor unfolded = net.forward(x, false);
    setReluFolding(true);
    const Tensor folded = net.forward(x, false);
    // Same algorithm either way, so still bitwise in practice; hold
    // it to the winograd budget to keep the test pinned to the
    // documented contract rather than an implementation detail.
    EXPECT_TRUE(allClose(unfolded, folded, 1e-3, 1e-2));
}

/** Inception branch chains fold their conv+relu pairs too. */
TEST(Fusion, MiniInceptionFoldedVsUnfoldedBitwise)
{
    ToggleGuard guard;
    setForcedConvAlgo(ConvAlgo::Im2col);
    Rng rng(41);
    Network net = makeMiniInception(rng);
    const Tensor x = randomInput(1, 1, 16, 16, 42);

    setReluFolding(false);
    const Tensor unfolded = net.forward(x, false);
    setReluFolding(true);
    const Tensor folded = net.forward(x, false);
    expectBitwise(unfolded, folded, "miniinception");
}

/**
 * Training-mode forwards never fold: the ReLU layers must see the
 * pre-activation values and cache their masks, so a full
 * forward/backward/step cycle works with folding enabled, and the
 * training forward is bitwise independent of the folding toggle.
 */
TEST(Fusion, TrainingNeverFolds)
{
    ToggleGuard guard;
    setForcedConvAlgo(ConvAlgo::Im2col);

    Rng rng_a(51);
    Network a = makeMiniVgg(rng_a);
    Rng rng_b(51);
    Network b = makeMiniVgg(rng_b);
    const Tensor x = randomInput(2, 1, 16, 16, 52);

    setReluFolding(true);
    const Tensor la = a.forward(x, true);
    setReluFolding(false);
    const Tensor lb = b.forward(x, true);
    expectBitwise(lb, la, "train forward");

    // Backward through the (not-folded) ReLU layers must work and
    // produce identical gradients on both networks.
    setReluFolding(true);
    a.backward(la);
    setReluFolding(false);
    b.backward(lb);
    auto pa = a.params();
    auto pb = b.params();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        ASSERT_EQ(pa[i]->grad.size(), pb[i]->grad.size());
        for (std::size_t j = 0; j < pa[i]->grad.size(); ++j)
            ASSERT_EQ(pa[i]->grad[j], pb[i]->grad[j])
                << "param " << i << " j=" << j;
    }
}

/** The toggle itself: disabling folding is observable and clean. */
TEST(Fusion, SetReluFoldingTogglesDispatch)
{
    ToggleGuard guard;
    setReluFolding(false);
    EXPECT_FALSE(reluFoldingEnabled());
    setReluFolding(true);
    EXPECT_TRUE(reluFoldingEnabled());
}

} // namespace
} // namespace pcnn
