/**
 * @file
 * TSan-targeted stress tests of the concurrent substrate: nested and
 * concurrently-dispatched parallelFor, pool resizing under load,
 * concurrent SGEMM (thread-local packing scratch), and many-thread
 * KernelTuner candidate-cache lookups. The assertions double as
 * functional checks, but the real payload is running this suite
 * under `ctest --preset tsan` with zero reports.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/parallel.hh"
#include "common/random.hh"
#include "gpu/gpu_spec.hh"
#include "pcnn/offline/kernel_tuner.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {
namespace {

TEST(ConcurrencyStress, NestedParallelForHammering)
{
    setThreadCount(4);
    for (int iter = 0; iter < 50; ++iter) {
        std::atomic<long> total{0};
        parallelFor(16, [&](std::size_t b0, std::size_t b1,
                            std::size_t) {
            for (std::size_t i = b0; i < b1; ++i) {
                // Nested calls must run inline on the calling lane.
                EXPECT_TRUE(inParallelRegion());
                long local = 0;
                parallelFor(100, [&](std::size_t j0, std::size_t j1,
                                     std::size_t) {
                    for (std::size_t j = j0; j < j1; ++j)
                        local += long(i * 100 + j);
                });
                total += local;
            }
        });
        // sum over i<16, j<100 of (i*100 + j)
        EXPECT_EQ(total.load(), 16L * 100 * 99 / 2 + 100L * 100 * 15 * 16 / 2);
    }
    setThreadCount(0);
}

TEST(ConcurrencyStress, ConcurrentTopLevelDispatches)
{
    setThreadCount(4);
    constexpr std::size_t kThreads = 8;
    constexpr int kIters = 25;
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &failures] {
            for (int iter = 0; iter < kIters; ++iter) {
                std::vector<long> partial(threadCount(), 0);
                parallelFor(1000, [&](std::size_t b0, std::size_t b1,
                                      std::size_t lane) {
                    for (std::size_t i = b0; i < b1; ++i)
                        partial[lane] += long(i + t);
                });
                long sum = 0;
                for (long p : partial)
                    sum += p;
                if (sum != 1000L * 999 / 2 + 1000L * long(t))
                    ++failures;
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);
    setThreadCount(0);
}

TEST(ConcurrencyStress, ResizeUnderLoad)
{
    setThreadCount(4);
    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&] {
            while (!stop.load()) {
                std::atomic<long> sum{0};
                parallelFor(64, [&](std::size_t b0, std::size_t b1,
                                    std::size_t) {
                    long local = 0;
                    for (std::size_t i = b0; i < b1; ++i)
                        local += long(i);
                    // Chunks are disjoint; one atomic add per chunk.
                    sum += local;
                });
                if (sum.load() != 64L * 63 / 2)
                    ++failures;
            }
        });
    }
    // Reconfigure the pool while dispatches are in flight; resize
    // serializes against them on the dispatch mutex.
    for (int round = 0; round < 20; ++round)
        setThreadCount(1 + std::size_t(round % 4));
    stop = true;
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(failures.load(), 0);
    setThreadCount(0);
}

TEST(ConcurrencyStress, ConcurrentSgemmSharedInputs)
{
    setThreadCount(2);
    const std::size_t n = 64;
    Rng rng(11);
    std::vector<float> a(n * n), b(n * n);
    for (auto &x : a)
        x = float(rng.uniform(-1, 1));
    for (auto &x : b)
        x = float(rng.uniform(-1, 1));

    // Reference result, computed serially.
    std::vector<float> ref(n * n, 0.0f);
    sgemm(false, true, n, n, n, a.data(), b.data(), ref.data());

    constexpr std::size_t kThreads = 6;
    std::vector<std::vector<float>> out(
        kThreads, std::vector<float>(n * n, 0.0f));
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // trans_b exercises the thread-local packing scratch.
            for (int iter = 0; iter < 10; ++iter) {
                std::fill(out[t].begin(), out[t].end(), 0.0f);
                sgemm(false, true, n, n, n, a.data(), b.data(),
                      out[t].data());
            }
        });
    }
    for (auto &th : threads)
        th.join();
    for (std::size_t t = 0; t < kThreads; ++t)
        EXPECT_EQ(out[t], ref) << "thread " << t;
    setThreadCount(0);
}

TEST(ConcurrencyStress, ConcurrentTunerCacheLookups)
{
    const GpuSpec gpu = jetsonTx1();
    const KernelTuner tuner(gpu);
    const GemmShape gemm{128, 729, 1200};

    // Serial reference: winner and candidate count.
    const TunedKernel ref = tuner.tune(gemm);
    const std::size_t n_cands = tuner.candidates().size();
    ASSERT_GT(n_cands, 0u);

    constexpr std::size_t kThreads = 8;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            // A fresh tuner per thread races the lazy cache fill;
            // the shared tuner races lookups against each other.
            const KernelTuner local(jetsonTx1());
            for (int iter = 0; iter < 5; ++iter) {
                if (local.candidates().size() != n_cands ||
                    tuner.candidates().size() != n_cands)
                    ++failures;
                const TunedKernel mine = tuner.tune(gemm);
                const TunedKernel theirs = local.tune(gemm);
                if (mine.config.tile.m != ref.config.tile.m ||
                    mine.config.tile.n != ref.config.tile.n ||
                    mine.config.regsPerThread !=
                        ref.config.regsPerThread ||
                    mine.skernel != ref.skernel ||
                    theirs.skernel != ref.skernel)
                    ++failures;
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);
}

} // namespace
} // namespace pcnn
