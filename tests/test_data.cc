/**
 * @file
 * Unit tests for the data module: Dataset container and the synthetic
 * labeled task.
 */

#include <gtest/gtest.h>

#include <set>

#include "data/dataset.hh"
#include "data/synthetic.hh"

namespace pcnn {
namespace {

TEST(Dataset, AddAndFetch)
{
    Dataset ds(Shape{1, 1, 2, 2});
    Tensor img(1, 1, 2, 2);
    img.fill(3.0f);
    ds.add(img, 4);
    EXPECT_EQ(ds.size(), 1u);
    EXPECT_EQ(ds.label(0), 4u);
    EXPECT_FLOAT_EQ(ds.image(0)[0], 3.0f);
}

TEST(Dataset, BatchMaterialization)
{
    Dataset ds(Shape{1, 1, 1, 2});
    for (int i = 0; i < 5; ++i) {
        Tensor img(1, 1, 1, 2);
        img.fill(float(i));
        ds.add(img, std::size_t(i));
    }
    const Tensor b = ds.batch(1, 3);
    EXPECT_EQ(b.shape().n, 3u);
    EXPECT_FLOAT_EQ(b[0], 1.0f);
    EXPECT_FLOAT_EQ(b[4], 3.0f);
    const auto labels = ds.batchLabels(1, 3);
    EXPECT_EQ(labels, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(DatasetDeath, BatchOutOfRangePanics)
{
    Dataset ds(Shape{1, 1, 1, 1});
    Tensor img(1, 1, 1, 1);
    ds.add(img, 0);
    EXPECT_DEATH(ds.batch(0, 2), "out of");
}

TEST(Dataset, ShuffleKeepsImageLabelPairs)
{
    Dataset ds(Shape{1, 1, 1, 1});
    for (int i = 0; i < 20; ++i) {
        Tensor img(1, 1, 1, 1);
        img[0] = float(i);
        ds.add(img, std::size_t(i));
    }
    Rng rng(3);
    ds.shuffle(rng);
    // Pairing invariant: pixel value still equals the label.
    for (std::size_t i = 0; i < ds.size(); ++i)
        EXPECT_FLOAT_EQ(ds.image(i)[0], float(ds.label(i)));
}

TEST(Dataset, TakeTailSplits)
{
    Dataset ds(Shape{1, 1, 1, 1});
    for (int i = 0; i < 10; ++i) {
        Tensor img(1, 1, 1, 1);
        img[0] = float(i);
        ds.add(img, std::size_t(i));
    }
    Dataset tail = ds.takeTail(3);
    EXPECT_EQ(ds.size(), 7u);
    EXPECT_EQ(tail.size(), 3u);
    EXPECT_EQ(tail.label(0), 7u);
    EXPECT_FLOAT_EQ(tail.image(2)[0], 9.0f);
}

TEST(SyntheticTask, DeterministicFromSeed)
{
    SyntheticTaskConfig cfg;
    cfg.seed = 5;
    SyntheticTask a(cfg), b(cfg);
    Dataset da = a.generate(10), db = b.generate(10);
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_EQ(da.label(i), db.label(i));
        EXPECT_LT(da.image(i).maxAbsDiff(db.image(i)), 1e-9);
    }
}

TEST(SyntheticTask, ClassesBalanced)
{
    SyntheticTaskConfig cfg;
    cfg.classes = 4;
    SyntheticTask task(cfg);
    Dataset ds = task.generate(400);
    std::vector<int> counts(4, 0);
    for (std::size_t i = 0; i < ds.size(); ++i)
        counts[ds.label(i)]++;
    for (int c : counts)
        EXPECT_EQ(c, 100);
}

TEST(SyntheticTask, TemplatesDistinct)
{
    SyntheticTaskConfig cfg;
    SyntheticTask task(cfg);
    const double diff =
        task.classTemplate(0).maxAbsDiff(task.classTemplate(1));
    EXPECT_GT(diff, 0.1);
}

TEST(SyntheticTask, TemplatesSmooth)
{
    // Adjacent pixels of a template correlate (spatial redundancy,
    // the property perforation exploits).
    SyntheticTaskConfig cfg;
    SyntheticTask task(cfg);
    const Tensor &t = task.classTemplate(0);
    double adj = 0.0, global = 0.0;
    int n_adj = 0, n_glob = 0;
    for (std::size_t y = 0; y < 15; ++y) {
        for (std::size_t x = 0; x < 15; ++x) {
            adj += std::abs(t.at(0, 0, y, x) - t.at(0, 0, y, x + 1));
            ++n_adj;
            global += std::abs(t.at(0, 0, y, x) -
                               t.at(0, 0, 15 - y, 15 - x));
            ++n_glob;
        }
    }
    EXPECT_LT(adj / n_adj, global / n_glob);
}

TEST(SyntheticTask, DifficultyControlsNoise)
{
    SyntheticTaskConfig easy;
    easy.difficulty = 0.05;
    SyntheticTaskConfig hard = easy;
    hard.difficulty = 2.0;

    // Same class, many samples: variance around the template grows
    // with difficulty.
    auto spread = [](SyntheticTaskConfig cfg) {
        cfg.maxShift = 0;
        SyntheticTask task(cfg);
        Dataset ds = task.generate(64);
        double var = 0.0;
        int n = 0;
        for (std::size_t i = 0; i < ds.size(); ++i) {
            if (ds.label(i) != 0)
                continue;
            const Tensor img = ds.image(i);
            const Tensor &tpl = task.classTemplate(0);
            for (std::size_t j = 0; j < img.size(); ++j) {
                const double d = img[j] - tpl[j];
                var += d * d;
                ++n;
            }
        }
        return var / n;
    };
    EXPECT_LT(spread(easy), spread(hard));
}

TEST(SyntheticTask, GenerateIsFreshData)
{
    SyntheticTaskConfig cfg;
    SyntheticTask task(cfg);
    Dataset a = task.generate(8);
    Dataset b = task.generate(8);
    // Different draws from the same task.
    double diff = 0.0;
    for (std::size_t i = 0; i < 8; ++i)
        diff += a.image(i).maxAbsDiff(b.image(i));
    EXPECT_GT(diff, 0.01);
}

} // namespace
} // namespace pcnn
