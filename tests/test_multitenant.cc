/**
 * @file
 * Multi-tenant serving tests (DESIGN.md §5k): model registry and
 * arena budget accounting, schedule adoption at registration, queue
 * fabric priority/admission/slack policy, autoscaler hysteresis, and
 * the MultiTenantEngine end to end — per-model bitwise logits across
 * replica counts, shed-before-interactive, zero steady-state repacks
 * and allocations across a scale-up.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "common/alloc_count.hh"
#include "common/parallel.hh"
#include "common/random.hh"
#include "nn/fusion.hh"
#include "nn/graph/compiled_graph.hh"
#include "nn/model_zoo.hh"
#include "pcnn/offline/plan_io.hh"
#include "serve/autoscaler.hh"
#include "serve/model_registry.hh"
#include "serve/multi_engine.hh"
#include "serve/scheduler.hh"
#include "tensor/tensor_ops.hh"
#include "tensor/winograd.hh"

namespace pcnn {
namespace {

Tensor
randomInput(Rng &rng, const Shape &in)
{
    Tensor t(Shape{1, in.c, in.h, in.w});
    t.fillUniform(rng, -1.0f, 1.0f);
    return t;
}

ModelConfig
modelConfig(const std::string &name, std::size_t max_batch = 4,
            std::size_t max_replicas = 4)
{
    ModelConfig mc;
    mc.name = name;
    mc.maxBatch = max_batch;
    mc.maxReplicas = max_replicas;
    return mc;
}

TenantRequest
makeRequest(std::size_t model, TaskClass cls, Tensor input,
            double deadline_offset_s = 0.1)
{
    TenantRequest r;
    r.model = model;
    r.cls = cls;
    r.req = classRequirement(cls);
    r.input = std::move(input);
    r.enqueued = std::chrono::steady_clock::now();
    r.deadline =
        r.urgent()
            ? r.enqueued + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(
                                   deadline_offset_s))
            : r.enqueued;
    return r;
}

// -------------------------------------------------- ServiceEstimator

TEST(ServiceEstimator, FallsBackToLargestObservedSmallerBatch)
{
    ServiceEstimator est(8);
    EXPECT_EQ(est.estS(8), 0.0);
    est.record(2, 0.010);
    EXPECT_DOUBLE_EQ(est.estS(8), 0.010);
    EXPECT_DOUBLE_EQ(est.estS(1), 0.0); // nothing at or under 1
    est.record(8, 0.040);
    EXPECT_DOUBLE_EQ(est.estS(8), 0.040);
    EXPECT_DOUBLE_EQ(est.estS(5), 0.010);
}

TEST(ServiceEstimator, EwmaSmoothes)
{
    ServiceEstimator est(1);
    est.record(1, 0.100);
    est.record(1, 0.200);
    EXPECT_GT(est.estS(1), 0.100);
    EXPECT_LT(est.estS(1), 0.200);
}

// ----------------------------------------------------- ModelRegistry

TEST(ModelRegistry, RegistersAndLooksUpByNameAndIndex)
{
    Rng rng(7);
    ModelRegistry reg;
    ASSERT_EQ(reg.registerModel(makeMiniVgg(rng), modelConfig("vgg")),
              RegisterStatus::Registered);
    ASSERT_EQ(reg.registerModel(makeMiniAlexNet(rng),
                                modelConfig("alex")),
              RegisterStatus::Registered);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.indexOf("vgg"), 0u);
    EXPECT_EQ(reg.indexOf("alex"), 1u);
    EXPECT_EQ(reg.indexOf("nope"), reg.size());
    ASSERT_NE(reg.find("alex"), nullptr);
    EXPECT_EQ(reg.find("alex")->name(), "alex");
    EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(ModelRegistry, RejectsDuplicateNames)
{
    Rng rng(7);
    ModelRegistry reg;
    ASSERT_EQ(reg.registerModel(makeMiniVgg(rng), modelConfig("m")),
              RegisterStatus::Registered);
    EXPECT_EQ(reg.registerModel(makeMiniVgg(rng), modelConfig("m")),
              RegisterStatus::DuplicateName);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(ModelRegistry, ArenaBudgetRejectsCleanly)
{
    if (!graphEnabled())
        GTEST_SKIP() << "arena accounting needs the graph path";
    Rng rng(7);
    // First find one model's true reservation, then set a budget
    // that admits exactly one model.
    std::size_t oneModel = 0;
    {
        ModelRegistry probe;
        ASSERT_EQ(probe.registerModel(makeMiniVgg(rng),
                                      modelConfig("m")),
                  RegisterStatus::Registered);
        oneModel = probe.model(0).reservedArenaBytes();
        ASSERT_GT(oneModel, 0u);
        EXPECT_EQ(probe.model(0).replicaArenaBytes() *
                      probe.model(0).maxReplicas(),
                  oneModel);
        EXPECT_EQ(probe.totalReservedArenaBytes(), oneModel);
    }

    RegistryConfig rc;
    rc.arenaBudgetBytes = oneModel;
    ModelRegistry reg(rc);
    ASSERT_EQ(reg.registerModel(makeMiniVgg(rng), modelConfig("a")),
              RegisterStatus::Registered);
    // A second identical model would double the reservation: a clean
    // rejection that leaves the registry unchanged.
    EXPECT_EQ(reg.registerModel(makeMiniVgg(rng), modelConfig("b")),
              RegisterStatus::BudgetExceeded);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.totalReservedArenaBytes(), oneModel);
}

TEST(ModelRegistry, RejectsScheduleCompiledUnderMaxBatch)
{
    Rng rng(7);
    Network net = makeMiniVgg(rng);
    const GraphSchedule small = buildGraphSchedule(net, 1);
    ModelConfig mc = modelConfig("m", /*max_batch=*/4);
    mc.schedule = &small;
    ModelRegistry reg;
    EXPECT_EQ(reg.registerModel(makeMiniVgg(rng), std::move(mc)),
              RegisterStatus::ScheduleBatchTooSmall);
    EXPECT_EQ(reg.size(), 0u);
}

TEST(ModelRegistry, MiniZooRegistersBothPerforationLevels)
{
    Rng rng(19);
    ModelRegistry reg;
    EXPECT_EQ(registerMiniZoo(reg, rng, 4, 2), 6u);
    EXPECT_EQ(reg.size(), 6u);
    Model *full = reg.find("MiniAlexNet/full");
    Model *half = reg.find("MiniAlexNet/p50");
    ASSERT_NE(full, nullptr);
    ASSERT_NE(half, nullptr);
    for (ConvLayer *c : full->prototype().convLayers())
        EXPECT_FALSE(c->perforated());
    bool anyPerforated = false;
    for (ConvLayer *c : half->prototype().convLayers())
        anyPerforated = anyPerforated || c->perforated();
    EXPECT_TRUE(anyPerforated)
        << "p50 variant registered without perforation";
    EXPECT_NE(reg.find("MiniVgg/full"), nullptr);
    EXPECT_NE(reg.find("MiniInception/p50"), nullptr);
}

TEST(ModelRegistry, AdoptsSerializedPlanScheduleBitwise)
{
    if (!graphEnabled())
        GTEST_SKIP() << "schedule adoption needs the graph path";
    Rng rng(31);
    Network net = makeMiniVgg(rng);

    // Serialize the schedule through the plan-v4 round trip, the
    // same bytes an offline compile would ship to the host.
    CompiledPlan plan;
    plan.netName = net.name();
    plan.gpuName = "host";
    plan.batch = 4;
    plan.schedule = buildGraphSchedule(net, 4);
    const auto bytes = serializePlan(plan);
    const auto loaded = deserializePlan(bytes);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_TRUE(loaded->schedule.has_value());

    ModelConfig mc = modelConfig("vgg", /*max_batch=*/4);
    mc.schedule = &*loaded->schedule;
    ModelRegistry reg;
    Rng rng2(31); // same seed: identical weights to `net`
    ASSERT_EQ(reg.registerModel(makeMiniVgg(rng2), std::move(mc)),
              RegisterStatus::Registered);
    // The registered model adopted the deserialized schedule as-is.
    ASSERT_NE(reg.model(0).schedule(), nullptr);
    EXPECT_EQ(reg.model(0).schedule()->arenaFloats,
              plan.schedule->arenaFloats);
    EXPECT_EQ(reg.model(0).schedule()->ops.size(),
              plan.schedule->ops.size());

    // And replicas serve bitwise-identical logits through it.
    Rng inputs(5);
    Tensor x = randomInput(inputs, net.inputShape());
    Tensor want = net.forward(x, false);
    MultiEngineConfig cfg;
    cfg.workers = 1;
    MultiTenantEngine engine(reg, cfg);
    auto sub = engine.submit(0, TaskClass::Interactive, x);
    ASSERT_EQ(sub.status, SubmitStatus::Accepted);
    const TenantResult r = sub.result.get();
    ASSERT_EQ(r.logits.size(), want.size());
    EXPECT_EQ(std::memcmp(r.logits.data(), want.data(),
                          want.size() * sizeof(float)),
              0);
}

// ------------------------------------------------------- QueueFabric

TEST(QueueFabric, GrantsOnlyWithIdleReplicaUrgentFirst)
{
    Rng rng(3);
    ModelRegistry reg;
    ASSERT_EQ(reg.registerModel(makeMiniVgg(rng),
                                modelConfig("m", 4, 2)),
              RegisterStatus::Registered);
    TenantMetrics meter;
    FabricConfig fc;
    fc.queueCapacity = 8;
    QueueFabric fabric(reg, fc, meter);
    Rng inputs(5);
    const Shape &in = reg.model(0).inputShape();

    BatchGrant g;
    EXPECT_FALSE(fabric.tryTake(g)); // nothing queued

    ASSERT_EQ(fabric.push(makeRequest(0, TaskClass::Background,
                                      randomInput(inputs, in))),
              SubmitStatus::Accepted);
    ASSERT_EQ(fabric.push(makeRequest(0, TaskClass::Background,
                                      randomInput(inputs, in))),
              SubmitStatus::Accepted);
    EXPECT_FALSE(fabric.tryTake(g)) << "granted without a replica";

    fabric.addIdle(0);
    ASSERT_TRUE(fabric.tryTake(g));
    EXPECT_TRUE(g.background);
    EXPECT_EQ(g.batch.size(), 2u);
    EXPECT_EQ(fabric.idleCount(0), 0u);

    // Urgent work wins over earlier-queued background.
    ASSERT_EQ(fabric.push(makeRequest(0, TaskClass::Background,
                                      randomInput(inputs, in))),
              SubmitStatus::Accepted);
    ASSERT_EQ(fabric.push(makeRequest(0, TaskClass::Interactive,
                                      randomInput(inputs, in))),
              SubmitStatus::Accepted);
    fabric.addIdle(0);
    ASSERT_TRUE(fabric.tryTake(g));
    EXPECT_FALSE(g.background);
    EXPECT_EQ(g.batch.size(), 1u);
    EXPECT_EQ(g.batch[0].cls, TaskClass::Interactive);
    EXPECT_EQ(fabric.backgroundQueued(0), 1u);
}

TEST(QueueFabric, UrgentLaneIsEarliestDeadlineFirst)
{
    Rng rng(3);
    ModelRegistry reg;
    ASSERT_EQ(reg.registerModel(makeMiniVgg(rng),
                                modelConfig("m", 4, 1)),
              RegisterStatus::Registered);
    TenantMetrics meter;
    FabricConfig fc;
    QueueFabric fabric(reg, fc, meter);
    Rng inputs(5);
    const Shape &in = reg.model(0).inputShape();

    // Interactive (100 ms) arrives before real-time (16.7 ms): EDF
    // must serve the real-time request first.
    ASSERT_EQ(fabric.push(makeRequest(0, TaskClass::Interactive,
                                      randomInput(inputs, in), 0.1)),
              SubmitStatus::Accepted);
    ASSERT_EQ(fabric.push(makeRequest(0, TaskClass::RealTime,
                                      randomInput(inputs, in),
                                      1.0 / 60.0)),
              SubmitStatus::Accepted);
    fabric.addIdle(0);
    BatchGrant g;
    ASSERT_TRUE(fabric.tryTake(g));
    ASSERT_EQ(g.batch.size(), 2u);
    EXPECT_EQ(g.batch[0].cls, TaskClass::RealTime);
    EXPECT_EQ(g.batch[1].cls, TaskClass::Interactive);
}

TEST(QueueFabric, ShedsBackgroundBeforeInteractiveUnderOverload)
{
    Rng rng(3);
    ModelRegistry reg;
    ASSERT_EQ(reg.registerModel(makeMiniVgg(rng),
                                modelConfig("m", 4, 1)),
              RegisterStatus::Registered);
    TenantMetrics meter;
    FabricConfig fc;
    fc.queueCapacity = 2;
    QueueFabric fabric(reg, fc, meter);
    Rng inputs(5);
    const Shape &in = reg.model(0).inputShape();

    // Fill the queue with background work.
    ASSERT_EQ(fabric.push(makeRequest(0, TaskClass::Background,
                                      randomInput(inputs, in))),
              SubmitStatus::Accepted);
    TenantRequest second = makeRequest(0, TaskClass::Background,
                                       randomInput(inputs, in));
    std::future<TenantResult> evictedFut = second.done.get_future();
    ASSERT_EQ(fabric.push(std::move(second)), SubmitStatus::Accepted);

    // A further background arrival is rejected outright...
    EXPECT_EQ(fabric.push(makeRequest(0, TaskClass::Background,
                                      randomInput(inputs, in))),
              SubmitStatus::QueueFull);

    // ...but an urgent arrival evicts the newest queued background
    // request and is admitted in its place.
    ASSERT_EQ(fabric.push(makeRequest(0, TaskClass::Interactive,
                                      randomInput(inputs, in))),
              SubmitStatus::Accepted);
    const TenantResult evicted = evictedFut.get();
    EXPECT_TRUE(evicted.shed);
    EXPECT_EQ(fabric.urgentQueued(0), 1u);
    EXPECT_EQ(fabric.backgroundQueued(0), 1u);

    // Another urgent arrival evicts the last background request.
    ASSERT_EQ(fabric.push(makeRequest(0, TaskClass::Interactive,
                                      randomInput(inputs, in))),
              SubmitStatus::Accepted);
    EXPECT_EQ(fabric.backgroundQueued(0), 0u);

    // With only urgent work queued, overload finally rejects urgent
    // arrivals too — but background never displaced interactive.
    EXPECT_EQ(fabric.push(makeRequest(0, TaskClass::Interactive,
                                      randomInput(inputs, in))),
              SubmitStatus::QueueFull);

    const TenantMetricsSnapshot m = meter.snapshot();
    EXPECT_EQ(m.backgroundEvicted, 2u);
    EXPECT_EQ(
        m.byClass[static_cast<std::size_t>(TaskClass::Background)]
            .shed,
        3u); // 2 evicted + 1 rejected
    EXPECT_EQ(
        m.byClass[static_cast<std::size_t>(TaskClass::Interactive)]
            .shed,
        1u);
}

TEST(QueueFabric, BackgroundBatchIsBoundedByOccupancyBudget)
{
    Rng rng(3);
    ModelRegistry reg;
    ASSERT_EQ(reg.registerModel(makeMiniVgg(rng),
                                modelConfig("m", 8, 1)),
              RegisterStatus::Registered);
    TenantMetrics meter;
    FabricConfig fc;
    fc.queueCapacity = 16;
    QueueFabric fabric(reg, fc, meter);
    Rng inputs(5);
    const Shape &in = reg.model(0).inputShape();

    // Teach the estimator: 10 ms at batch 1, 15 ms at 2, 30 ms at 4.
    // Guard is interactive (T_i = 100 ms): slack = 90 ms, half of it
    // is 45 ms, but the occupancy cap 2 x 10 ms = 20 ms is tighter.
    ServiceEstimator &est = reg.model(0).estimator();
    est.record(1, 0.010);
    est.record(2, 0.015);
    est.record(4, 0.030);
    EXPECT_NEAR(fabric.backgroundBudgetS(), 0.020, 1e-12);

    for (int i = 0; i < 8; ++i)
        ASSERT_EQ(fabric.push(makeRequest(0, TaskClass::Background,
                                          randomInput(inputs, in))),
                  SubmitStatus::Accepted);
    fabric.addIdle(0);
    BatchGrant g;
    ASSERT_TRUE(fabric.tryTake(g));
    EXPECT_TRUE(g.background);
    // Batch 4 estimates 30 ms > 20 ms budget; batch 3 falls back to
    // the batch-2 estimate (15 ms) and fits.
    EXPECT_EQ(g.batch.size(), 3u);
    EXPECT_EQ(fabric.backgroundQueued(0), 5u);
}

// -------------------------------------------------------- Autoscaler

AutoscalerConfig
scalerConfig()
{
    AutoscalerConfig cfg;
    cfg.minReplicas = 1;
    cfg.maxReplicas = 4;
    cfg.growBacklogS = 0.050;
    cfg.shrinkBacklogS = 0.005;
    cfg.growHold = 2;
    cfg.shrinkHold = 3;
    cfg.cooldownTicks = 2;
    return cfg;
}

TEST(Autoscaler, GrowsOnlyAfterSustainedPressureAndCoolsDown)
{
    AutoscalerPolicy p(scalerConfig());
    using Action = AutoscalerPolicy::Action;
    EXPECT_EQ(p.tick(0.2, 1), Action::Hold); // streak 1 of 2
    EXPECT_EQ(p.tick(0.2, 1), Action::Grow);
    // Cooldown: pressure is ignored while the new replica warms.
    EXPECT_EQ(p.tick(0.2, 2), Action::Hold);
    EXPECT_EQ(p.tick(0.2, 2), Action::Hold);
    // Streaks restarted after cooldown: two more ticks to grow.
    EXPECT_EQ(p.tick(0.2, 2), Action::Hold);
    EXPECT_EQ(p.tick(0.2, 2), Action::Grow);
}

TEST(Autoscaler, HonorsReplicaBounds)
{
    AutoscalerPolicy p(scalerConfig());
    using Action = AutoscalerPolicy::Action;
    EXPECT_EQ(p.tick(0.2, 4), Action::Hold); // at maxReplicas
    EXPECT_EQ(p.tick(0.2, 4), Action::Hold);
    AutoscalerPolicy q(scalerConfig());
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(q.tick(0.0, 1), Action::Hold); // at minReplicas
}

TEST(Autoscaler, ShrinksOnlyAfterSustainedIdle)
{
    AutoscalerPolicy p(scalerConfig());
    using Action = AutoscalerPolicy::Action;
    EXPECT_EQ(p.tick(0.0, 2), Action::Hold);
    EXPECT_EQ(p.tick(0.0, 2), Action::Hold);
    EXPECT_EQ(p.tick(0.0, 2), Action::Shrink);
}

TEST(Autoscaler, DeadbandPreventsFlappingOnSteadyLoadStep)
{
    AutoscalerPolicy p(scalerConfig());
    using Action = AutoscalerPolicy::Action;
    // Load step: grow once, then the backlog settles into the
    // deadband (between shrink and grow thresholds). No further
    // action may fire no matter how long the steady state lasts or
    // how it ripples inside the band.
    EXPECT_EQ(p.tick(0.2, 1), Action::Hold);
    EXPECT_EQ(p.tick(0.2, 1), Action::Grow);
    for (int i = 0; i < 50; ++i) {
        const double backlog = (i % 2 == 0) ? 0.010 : 0.045;
        EXPECT_EQ(p.tick(backlog, 2), Action::Hold)
            << "flapped at tick " << i;
    }
    // Even isolated excursions below the shrink threshold must not
    // accumulate across deadband visits.
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(p.tick(0.001, 2), Action::Hold);
        EXPECT_EQ(p.tick(0.010, 2), Action::Hold);
    }
}

TEST(Autoscaler, BacklogSignal)
{
    EXPECT_EQ(backlogPerReplicaS(0, 1, 4, 0.1), 0.0);
    EXPECT_EQ(backlogPerReplicaS(8, 1, 4, 0.0), 0.0);
    // 8 queued / batch 4 = 2 batches x 0.1 s / 2 replicas = 0.1 s.
    EXPECT_DOUBLE_EQ(backlogPerReplicaS(8, 2, 4, 0.1), 0.1);
    // Ceiling: 9 queued needs 3 batches.
    EXPECT_DOUBLE_EQ(backlogPerReplicaS(9, 1, 4, 0.1), 0.3);
}

// ------------------------------------------------ MultiTenantEngine

MultiEngineConfig
engineConfig(std::size_t workers)
{
    MultiEngineConfig cfg;
    cfg.workers = workers;
    cfg.initialReplicas = 1;
    cfg.autoscaleTickS = 0.0; // deterministic: scaleTo only
    return cfg;
}

TEST(MultiTenant, PerModelBitwiseLogitsAcrossReplicaCounts)
{
    Rng rng(11);
    ModelRegistry reg;
    // maxBatch 1 pins the batch composition so every request is
    // served exactly as the prototype forward computes it.
    ASSERT_EQ(reg.registerModel(makeMiniAlexNet(rng),
                                modelConfig("alex", 1, 4)),
              RegisterStatus::Registered);
    ASSERT_EQ(reg.registerModel(makeMiniVgg(rng),
                                modelConfig("vgg", 1, 4)),
              RegisterStatus::Registered);
    ASSERT_EQ(reg.registerModel(makeMiniInception(rng),
                                modelConfig("incep", 1, 4)),
              RegisterStatus::Registered);

    Rng inputs(23);
    std::vector<std::vector<Tensor>> xs(reg.size());
    std::vector<std::vector<Tensor>> want(reg.size());
    for (std::size_t m = 0; m < reg.size(); ++m) {
        for (int i = 0; i < 4; ++i) {
            xs[m].push_back(
                randomInput(inputs, reg.model(m).inputShape()));
            want[m].push_back(
                reg.model(m).prototype().forward(xs[m].back(), false));
        }
    }

    MultiTenantEngine engine(reg, engineConfig(2));
    for (std::size_t replicas : {1u, 2u, 4u}) {
        for (std::size_t m = 0; m < reg.size(); ++m)
            ASSERT_EQ(engine.scaleTo(m, replicas), replicas);
        std::vector<std::vector<std::future<TenantResult>>> futs(
            reg.size());
        for (std::size_t m = 0; m < reg.size(); ++m) {
            for (const Tensor &x : xs[m]) {
                auto sub =
                    engine.submit(m, TaskClass::Interactive, x);
                ASSERT_EQ(sub.status, SubmitStatus::Accepted);
                futs[m].push_back(std::move(sub.result));
            }
        }
        for (std::size_t m = 0; m < reg.size(); ++m) {
            for (std::size_t i = 0; i < futs[m].size(); ++i) {
                const TenantResult r = futs[m][i].get();
                ASSERT_FALSE(r.shed);
                ASSERT_EQ(r.logits.size(), want[m][i].size());
                EXPECT_EQ(std::memcmp(r.logits.data(),
                                      want[m][i].data(),
                                      want[m][i].size() *
                                          sizeof(float)),
                          0)
                    << "model " << m << " request " << i << " at "
                    << replicas << " replicas";
            }
        }
    }
}

TEST(MultiTenant, ScaleUpKeepsZeroRepacksAndZeroSteadyAllocs)
{
    Rng rng(29);
    ModelRegistry reg;
    ASSERT_EQ(reg.registerModel(makeMiniVgg(rng),
                                modelConfig("vgg", 4, 3)),
              RegisterStatus::Registered);
    MultiTenantEngine engine(reg, engineConfig(2));
    Rng inputs(31);
    const Shape &in = reg.model(0).inputShape();

    auto wave = [&](int n) {
        std::vector<std::future<TenantResult>> futs;
        for (int i = 0; i < n; ++i) {
            auto sub = engine.submit(0, TaskClass::Background,
                                     randomInput(inputs, in));
            ASSERT_EQ(sub.status, SubmitStatus::Accepted);
            futs.push_back(std::move(sub.result));
        }
        for (auto &f : futs)
            ASSERT_FALSE(f.get().shed);
    };

    wave(16);
    // Construction materialized every panel: cloning two more
    // replicas and serving through them must not pack anything new
    // (shared panels) nor allocate in any steady-state forward
    // (makeReplica warms each clone at maxBatch before publishing).
    const std::uint64_t packs = weightPackCount();
    const std::uint64_t wino = winogradPackCount();
    ASSERT_EQ(engine.scaleTo(0, 3), 3u);
    wave(48);
    EXPECT_EQ(weightPackCount(), packs)
        << "scale-up repacked SGEMM panels";
    EXPECT_EQ(winogradPackCount(), wino)
        << "scale-up re-transformed winograd weights";

    const TenantMetricsSnapshot m = engine.metrics();
    EXPECT_EQ(m.steadyAllocs, 0u);
    if (allocCountingEnabled()) {
        EXPECT_GT(m.steadyProbedBatches, 0u);
    }
    // The trajectory recorded the initial replica and the scale-up.
    ASSERT_GE(m.replicaTrajectory.size(), 3u);
    EXPECT_EQ(m.replicaTrajectory.front().replicas, 1u);
    EXPECT_EQ(m.replicaTrajectory.back().replicas, 3u);
}

TEST(MultiTenant, ArenaGaugesTrackPoolsAndRegistry)
{
    Rng rng(37);
    ModelRegistry reg;
    ASSERT_EQ(reg.registerModel(makeMiniVgg(rng),
                                modelConfig("vgg", 2, 4)),
              RegisterStatus::Registered);
    ASSERT_EQ(reg.registerModel(makeMiniAlexNet(rng),
                                modelConfig("alex", 2, 4)),
              RegisterStatus::Registered);
    MultiTenantEngine engine(reg, engineConfig(1));

    const std::size_t perVgg = reg.model(0).replicaArenaBytes();
    const std::size_t perAlex = reg.model(1).replicaArenaBytes();
    EXPECT_EQ(engine.liveArenaBytes(), perVgg + perAlex);
    ASSERT_EQ(engine.scaleTo(0, 3), 3u);
    EXPECT_EQ(engine.liveArenaBytes(), 3 * perVgg + perAlex);
    ASSERT_EQ(engine.scaleTo(0, 1), 1u);
    EXPECT_EQ(engine.liveArenaBytes(), perVgg + perAlex);

    const TenantMetricsSnapshot m = engine.metrics();
    EXPECT_EQ(m.liveArenaBytes, engine.liveArenaBytes());
    EXPECT_EQ(m.reservedArenaBytes, reg.totalReservedArenaBytes());
    if (graphEnabled()) {
        EXPECT_GT(perVgg, 0u);
        EXPECT_LE(m.liveArenaBytes, m.reservedArenaBytes);
    }
}

TEST(MultiTenant, ScalerThreadGrowsUnderLoadAndShrinksWhenIdle)
{
    Rng rng(41);
    ModelRegistry reg;
    ASSERT_EQ(reg.registerModel(makeMiniVgg(rng),
                                modelConfig("vgg", 4, 3)),
              RegisterStatus::Registered);
    MultiEngineConfig cfg;
    cfg.workers = 2;
    cfg.initialReplicas = 1;
    cfg.autoscaleTickS = 0.002;
    cfg.autoscaler = scalerConfig();
    cfg.autoscaler.maxReplicas = 3;
    // Tiny thresholds: any real backlog (millisecond forwards) is
    // pressure; a drained queue is idle.
    cfg.autoscaler.growBacklogS = 0.0005;
    cfg.autoscaler.shrinkBacklogS = 0.0002;
    MultiTenantEngine engine(reg, cfg);
    Rng inputs(43);
    const Shape &in = reg.model(0).inputShape();

    // Sustained background flood: keep the queue pinned at capacity
    // so the backlog signal is unambiguous (one MiniVgg forward is
    // ~0.1 ms — trickling requests would be served in place and the
    // scaler would rightly hold at one replica). Bounded by a
    // generous deadline, not by timing assumptions.
    std::vector<std::future<TenantResult>> futs;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(20);
    while (engine.replicaCount(0) < 2 &&
           std::chrono::steady_clock::now() < deadline) {
        auto sub = engine.submit(0, TaskClass::Background,
                                 randomInput(inputs, in));
        if (sub.status == SubmitStatus::Accepted)
            futs.push_back(std::move(sub.result));
        else // queue full: let the workers and the scaler run
            std::this_thread::sleep_for(
                std::chrono::microseconds(500));
    }
    EXPECT_GE(engine.replicaCount(0), 2u)
        << "pool never grew under sustained backlog";
    for (auto &f : futs)
        f.get();

    // Idle: the pool must come back down to one replica...
    const auto shrinkBy = std::chrono::steady_clock::now() +
                          std::chrono::seconds(20);
    while (engine.replicaCount(0) > 1 &&
           std::chrono::steady_clock::now() < shrinkBy)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(engine.replicaCount(0), 1u)
        << "pool never shrank after the load drained";

    // ...and stay there: steady zero load must not flap.
    const std::size_t events = engine.metrics().replicaTrajectory.size();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(engine.metrics().replicaTrajectory.size(), events)
        << "replica pool flapped on steady zero load";
}

TEST(MultiTenant, DrainsEverythingOnStopAndRejectsAfter)
{
    Rng rng(47);
    ModelRegistry reg;
    ASSERT_EQ(reg.registerModel(makeMiniVgg(rng),
                                modelConfig("vgg", 4, 2)),
              RegisterStatus::Registered);
    MultiTenantEngine engine(reg, engineConfig(1));
    Rng inputs(53);
    const Shape &in = reg.model(0).inputShape();

    std::vector<std::future<TenantResult>> futs;
    for (int i = 0; i < 12; ++i) {
        auto sub = engine.submit(
            0,
            i % 3 == 0 ? TaskClass::Interactive : TaskClass::Background,
            randomInput(inputs, in));
        ASSERT_EQ(sub.status, SubmitStatus::Accepted);
        futs.push_back(std::move(sub.result));
    }
    engine.stop();
    // Every accepted request was served exactly once, none dropped.
    for (auto &f : futs) {
        const TenantResult r = f.get();
        EXPECT_FALSE(r.shed);
        EXPECT_GT(r.logits.size(), 0u);
    }
    EXPECT_EQ(engine
                  .submit(0, TaskClass::Interactive,
                          randomInput(inputs, in))
                  .status,
              SubmitStatus::Stopped);
}

} // namespace
} // namespace pcnn
