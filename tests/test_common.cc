/**
 * @file
 * Unit tests for the common module: RNG, tables, CSV, statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/csv.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace pcnn {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.5, 2.5);
        ASSERT_GE(u, -3.5);
        ASSERT_LT(u, 2.5);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng r(99);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(7));
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const auto v = r.range(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, GaussianMoments)
{
    Rng r(21);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(r.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled)
{
    Rng r(22);
    RunningStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(r.gaussian(10.0, 3.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.1);
    EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, ChanceProbability)
{
    Rng r(33);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng r(44);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIsIndependent)
{
    Rng a(55);
    Rng child = a.fork();
    EXPECT_NE(a.next(), child.next());
}

// ---------------------------------------------------------- TextTable

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"A", "B"});
    t.addRow({"1", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("A"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 1u);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"col", "x"});
    t.addRow({"longvalue", "1"});
    const std::string out = t.render();
    // Every rendered line has equal width.
    std::size_t width = 0;
    std::size_t start = 0;
    while (start < out.size()) {
        const std::size_t end = out.find('\n', start);
        const std::size_t len = end - start;
        if (width == 0)
            width = len;
        EXPECT_EQ(len, width);
        start = end + 1;
    }
}

TEST(TextTable, NumFormatsTrimZeros)
{
    EXPECT_EQ(TextTable::num(1.50, 2), "1.5");
    EXPECT_EQ(TextTable::num(2.00, 2), "2");
    EXPECT_EQ(TextTable::num(0.125, 3), "0.125");
    EXPECT_EQ(TextTable::num(42), "42");
    EXPECT_EQ(TextTable::num(std::size_t(7)), "7");
}

TEST(TextTableDeath, RowWidthMismatchPanics)
{
    TextTable t({"A", "B"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

// ---------------------------------------------------------- CsvWriter

TEST(CsvWriter, BasicRender)
{
    CsvWriter w({"a", "b"});
    w.addRow({"1", "2"});
    EXPECT_EQ(w.render(), "a,b\n1,2\n");
}

TEST(CsvWriter, EscapesSpecialCharacters)
{
    CsvWriter w({"a"});
    w.addRow({"x,y"});
    w.addRow({"he said \"hi\""});
    const std::string out = w.render();
    EXPECT_NE(out.find("\"x,y\""), std::string::npos);
    EXPECT_NE(out.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(CsvWriter, WritesFile)
{
    CsvWriter w({"n"});
    w.addRow({"1"});
    const std::string path = "/tmp/pcnn_csv_test.csv";
    ASSERT_TRUE(w.writeFile(path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
}

// -------------------------------------------------------------- stats

TEST(Stats, MeanStddev)
{
    const std::vector<double> v{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
    EXPECT_NEAR(stddev(v), std::sqrt(1.25), 1e-12);
}

TEST(Stats, Geomean)
{
    const std::vector<double> v{1, 4, 16};
    EXPECT_NEAR(geomean(v), 4.0, 1e-9);
}

TEST(Stats, MinMax)
{
    const std::vector<double> v{3, -1, 7};
    EXPECT_DOUBLE_EQ(minOf(v), -1.0);
    EXPECT_DOUBLE_EQ(maxOf(v), 7.0);
}

TEST(RunningStats, MatchesBatchStats)
{
    Rng r(3);
    std::vector<double> v;
    RunningStats s;
    for (int i = 0; i < 1000; ++i) {
        const double x = r.uniform(-5, 5);
        v.push_back(x);
        s.add(x);
    }
    EXPECT_NEAR(s.mean(), mean(v), 1e-9);
    EXPECT_NEAR(s.stddev(), stddev(v), 1e-9);
    EXPECT_DOUBLE_EQ(s.min(), minOf(v));
    EXPECT_DOUBLE_EQ(s.max(), maxOf(v));
    EXPECT_EQ(s.count(), v.size());
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

} // namespace
} // namespace pcnn
