/**
 * @file
 * Unit tests for offline compilation: the Fig. 9 staircase, kernel
 * tuning (Eq. 10), the resource model (Eq. 11), batch selection and
 * the global decision loop (Eq. 13).
 */

#include <gtest/gtest.h>

#include "gpu/memory_model.hh"
#include "nn/model_zoo.hh"
#include "pcnn/offline/batch_selector.hh"
#include "pcnn/offline/compiler.hh"
#include "pcnn/offline/kernel_tuner.hh"
#include "pcnn/offline/resource_model.hh"
#include "pcnn/offline/time_model.hh"

namespace pcnn {
namespace {

// ------------------------------------------------------- KernelTuner

TEST(KernelTuner, MinRegFromRegisterFile)
{
    // 65536 regs / 2048 threads = 32 (the paper's minReg on K20).
    EXPECT_EQ(KernelTuner(k20c()).minReg(), 32u);
}

TEST(KernelTuner, StaircaseOnePointPerTlp)
{
    const KernelTuner tuner(k20c());
    const auto stair = tuner.staircase(tileByName(64, 64));
    ASSERT_FALSE(stair.empty());
    // TLP strictly increases along the staircase, registers fall.
    std::size_t last_tlp = 0, last_regs = 256;
    for (const KernelConfig &cfg : stair) {
        const Occupancy o =
            occupancy(k20c(), cfg.tile, cfg.regsPerThread);
        EXPECT_GT(o.ctasPerSm, last_tlp);
        EXPECT_LT(cfg.regsPerThread, last_regs);
        last_tlp = o.ctasPerSm;
        last_regs = cfg.regsPerThread;
    }
}

TEST(KernelTuner, StaircaseKeepsRightmostPoint)
{
    // Within one stair the kept point has the most registers: adding
    // one more register must change the TLP (or be the natural top).
    const KernelTuner tuner(k20c());
    for (const KernelConfig &cfg : tuner.staircase(tileByName(64, 64))) {
        if (cfg.regsPerThread == cfg.tile.naturalRegs)
            continue;
        const Occupancy here =
            occupancy(k20c(), cfg.tile, cfg.regsPerThread);
        const Occupancy above =
            occupancy(k20c(), cfg.tile, cfg.regsPerThread + 1);
        EXPECT_NE(here.ctasPerSm, above.ctasPerSm)
            << cfg.str() << " is not the rightmost point of its stair";
    }
}

TEST(KernelTuner, CandidatesCoverCatalogue)
{
    const KernelTuner tuner(jetsonTx1());
    const auto cands = tuner.candidates();
    // At least one candidate per catalogue tile.
    for (const TileConfig &tile : tileCatalogue()) {
        const bool found =
            std::any_of(cands.begin(), cands.end(),
                        [&](const KernelConfig &c) {
                            return c.tile.m == tile.m &&
                                   c.tile.n == tile.n;
                        });
        EXPECT_TRUE(found) << tile.str();
    }
}

TEST(KernelTuner, TunePicksReasonableKernel)
{
    const KernelTuner tuner(k20c());
    // Batched AlexNet CONV3: plenty of parallelism.
    const TunedKernel k = tuner.tune({384, 169 * 64, 2304});
    EXPECT_GE(k.optTLP, 1u);
    EXPECT_GT(k.predictedTimeS, 0.0);
    EXPECT_GT(k.skernel, 0.0);
}

TEST(KernelTuner, TimeObjectiveNeverSlowerThanMetric)
{
    // The ablation claim: direct time minimization is the floor.
    const KernelTuner tuner(jetsonTx1());
    const GemmShape shapes[] = {
        {128, 729, 1200}, {128, 729 * 32, 1200}, {96, 3025, 363},
        {384, 169, 2304},
    };
    for (const GemmShape &g : shapes) {
        const TunedKernel metric =
            tuner.tune(g, TuneObjective::SkernelMetric);
        const TunedKernel time = tuner.tune(g, TuneObjective::TimeModel);
        EXPECT_LE(time.predictedTimeS, metric.predictedTimeS + 1e-12);
    }
}

// ----------------------------------------------------- resource model

TEST(ResourceModel, PaperExample)
{
    // Section IV.B.3: GridSize 40, optTLP 3, 10 SMs -> optSM 7
    // (releasing 3 SMs).
    EXPECT_EQ(optimalSms(40, 3, 10), 7u);
}

TEST(ResourceModel, FullGridNeedsAllSms)
{
    EXPECT_EQ(optimalSms(39, 3, 13), 13u);
}

TEST(ResourceModel, TinyGridNeedsFewSms)
{
    EXPECT_EQ(optimalSms(6, 3, 13), 2u);
    EXPECT_EQ(optimalSms(1, 3, 13), 1u);
}

TEST(ResourceModel, InvariantHolds)
{
    // Property: nInvocations(optSM) == nInvocations(all SMs), and
    // optSM-1 would increase it (minimality).
    for (std::size_t grid : {1u, 5u, 12u, 39u, 40u, 100u, 1000u}) {
        for (std::size_t tlp : {1u, 2u, 3u, 5u}) {
            const std::size_t sms = 13;
            const std::size_t opt = optimalSms(grid, tlp, sms);
            auto inv = [&](std::size_t s) {
                return (grid + tlp * s - 1) / (tlp * s);
            };
            EXPECT_EQ(inv(opt), inv(sms)) << grid << "/" << tlp;
            if (opt > 1) {
                EXPECT_GT(inv(opt - 1), inv(sms))
                    << grid << "/" << tlp;
            }
        }
    }
}

// -------------------------------------------------------- time model

TEST(TimeModel, LayerTimePositiveAndMonotonicInBatch)
{
    const TimeModel tm(k20c());
    const ConvSpec conv3 = alexNet().convs[2];
    const KernelTuner tuner(k20c());
    TunedKernel k = tuner.tune(conv3.gemmShape(1));
    k.optSM = 13;
    const double t1 = tm.layerTime(conv3, k, 1);
    const double t32 = tm.layerTime(conv3, k, 32);
    EXPECT_GT(t1, 0.0);
    EXPECT_GT(t32, t1);
}

TEST(TimeModel, PerforationReducesTime)
{
    const TimeModel tm(jetsonTx1());
    const ConvSpec conv2 = alexNet().convs[1];
    const KernelTuner tuner(jetsonTx1());
    TunedKernel k = tuner.tune(conv2.gemmShape(1));
    const double full = tm.layerTime(conv2, k, 1);
    const double half = tm.layerTime(conv2, k, 1, 364);
    EXPECT_LT(half, full);
}

TEST(TimeModel, FcDominatedByWeightStreamingAtBatch1)
{
    // AlexNet's fc tail reads ~235 MB of weights; at batch 1 on TX1
    // that is pure bandwidth.
    const TimeModel tm(jetsonTx1());
    const double t = tm.fcTime(alexNet(), 1);
    const double stream = 4.0 * (9216.0 * 4096 + 4096.0 * 4096 +
                                 4096.0 * 1000) /
                          jetsonTx1().bandwidthBytes();
    EXPECT_NEAR(t, stream, stream * 0.1);
}

// ---------------------------------------------------- batch selector

TEST(BatchSelector, MemoryCapPositive)
{
    const BatchSelector bs(jetsonTx1());
    EXPECT_GE(bs.memoryCap(alexNet()), 32u);
    // VGG's activations are huge; the cap is far smaller.
    EXPECT_LT(bs.memoryCap(vgg16()), bs.memoryCap(alexNet()));
}

TEST(BatchSelector, BackgroundBatchReachesFullUtil)
{
    const GpuSpec gpu = k20c();
    const BatchSelector bs(gpu);
    const NetDescriptor net = alexNet();
    const std::size_t batch = bs.backgroundBatch(net);
    EXPECT_GE(batch, 1u);

    // Verify the claim: the last layer's Util at this batch is ~1.
    const KernelTuner tuner(gpu);
    const GemmShape g = net.convs.back().gemmShape(batch);
    const TunedKernel k = tuner.tune(g);
    const SgemmModel model(gpu, k.config);
    EXPECT_GT(model.util(g), 0.93);
}

TEST(BatchSelector, OptimalBatchDiffersAcrossPlatforms)
{
    // Fig. 8: the batch at which the GPU saturates (last-layer Util
    // hits 1) varies with the platform's maxBlocks.
    const NetDescriptor net = alexNet();
    const std::size_t b_k20 =
        BatchSelector(k20c()).smallestFullUtilBatch(net);
    const std::size_t b_tx1 =
        BatchSelector(jetsonTx1()).smallestFullUtilBatch(net);
    EXPECT_NE(b_k20, b_tx1);
}

TEST(BatchSelector, InitialBatchFromDataRate)
{
    const BatchSelector bs(k20c());
    AppSpec app = imageTaggingApp();
    app.taskClass = TaskClass::Interactive;
    app.dataRateHz = 50.0;
    const UserRequirement req = inferRequirement(app); // Ti = 0.1 s
    EXPECT_EQ(bs.initialBatch(alexNet(), app, req), 5u);

    app.dataRateHz = 1.0;
    EXPECT_EQ(bs.initialBatch(alexNet(), app, inferRequirement(app)),
              1u);
}

// ----------------------------------------------------------- compiler

TEST(OfflineCompiler, PlanStructure)
{
    const OfflineCompiler compiler(k20c());
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 4);
    ASSERT_EQ(plan.layers.size(), 5u);
    EXPECT_EQ(plan.batch, 4u);
    for (const LayerSchedule &ls : plan.layers) {
        EXPECT_GE(ls.kernel.optTLP, 1u);
        EXPECT_GE(ls.kernel.optSM, 1u);
        EXPECT_LE(ls.kernel.optSM, 13u);
        EXPECT_GT(ls.timeS, 0.0);
        EXPECT_GT(ls.util, 0.0);
        EXPECT_LE(ls.util, 1.0);
    }
    EXPECT_GT(plan.latencyS(), 0.0);
    EXPECT_GT(plan.footprint.total(), 0.0);
}

TEST(OfflineCompiler, InteractiveMeetsRequirementOnK20)
{
    // Age detection on the server GPU: comfortably under 100 ms.
    const OfflineCompiler compiler(k20c());
    const CompiledPlan plan =
        compiler.compile(alexNet(), ageDetectionApp());
    EXPECT_FALSE(plan.timeRequirementMissed);
    EXPECT_LE(plan.latencyS(), 0.1);
}

TEST(OfflineCompiler, BatchShrinksWhenTimeTight)
{
    // A fast data stream would allow a big batch, but the time
    // requirement forces it down (Eq. 13 loop).
    AppSpec app = ageDetectionApp();
    app.dataRateHz = 5000.0; // 500 images available within Ti
    const OfflineCompiler compiler(jetsonTx1());
    const CompiledPlan plan = compiler.compile(alexNet(), app);
    EXPECT_LT(plan.batch, 500u);
}

TEST(OfflineCompiler, BackgroundUsesBigBatch)
{
    const OfflineCompiler compiler(k20c());
    const CompiledPlan plan =
        compiler.compile(alexNet(), imageTaggingApp());
    EXPECT_GT(plan.batch, 1u);
}

TEST(OfflineCompiler, RealTimeMissedOnTx1WithoutTuning)
{
    // The Fig. 15(b) setup: even non-batched execution misses the
    // 60 FPS deadline on TX1, so only accuracy tuning can save it.
    const OfflineCompiler compiler(jetsonTx1());
    const CompiledPlan plan =
        compiler.compile(googleNet(), videoSurveillanceApp());
    EXPECT_EQ(plan.batch, 1u);
    EXPECT_TRUE(plan.timeRequirementMissed);
}

TEST(OfflineCompiler, UnderutilizedLayersGetFewerSms)
{
    // Table V: AlexNet's later layers underutilize the GPU at batch
    // 1, so optSM < numSMs for at least CONV5.
    const OfflineCompiler compiler(k20c());
    const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 1);
    EXPECT_LT(plan.layers.back().kernel.optSM, 13u);
}

} // namespace
} // namespace pcnn
