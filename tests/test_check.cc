/**
 * @file
 * Tests of the contract layer (common/check.hh): the macros
 * themselves, plus death tests proving the deployed contracts fire —
 * shape-mismatched SGEMM consumers, out-of-range Tensor::at, and
 * invalid optSM/optTLP plans reaching the runtime scheduler.
 */

#include <gtest/gtest.h>

#include "common/check.hh"
#include "gpu/gpu_spec.hh"
#include "nn/fc_layer.hh"
#include "nn/model_zoo.hh"
#include "pcnn/offline/compiler.hh"
#include "pcnn/offline/resource_model.hh"
#include "pcnn/runtime/kernel_scheduler.hh"
#include "pcnn/runtime/tuning_table.hh"
#include "pcnn/task.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {
namespace {

// Several fixtures compile plans first, which spins up the worker
// pool; the default "fast" (plain fork) death-test style is unsafe
// once threads exist.
class ThreadsafeDeathStyle : public ::testing::Environment
{
    void
    SetUp() override
    {
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    }
};

const auto *const g_death_style =
    ::testing::AddGlobalTestEnvironment(new ThreadsafeDeathStyle);

using CheckDeathTest = ::testing::Test;

// ------------------------------------------------------- the macros

TEST(Check, PassingChecksAreSilent)
{
    PCNN_CHECK(1 + 1 == 2, "arithmetic");
    PCNN_CHECK_EQ(4, 4);
    PCNN_CHECK_NE(4, 5, "close but distinct");
    PCNN_CHECK_LT(3, 4);
    PCNN_CHECK_LE(4, 4);
    PCNN_CHECK_GT(5, 4);
    PCNN_CHECK_GE(5, 5, "reflexive");
}

TEST(Check, OperandsEvaluateExactlyOnce)
{
    int calls = 0;
    auto next = [&calls]() { return ++calls; };
    PCNN_CHECK_LE(next(), 10, "side-effecting operand");
    EXPECT_EQ(calls, 1);
}

TEST(CheckDeathTest, FailureReportsBothOperands)
{
    const std::size_t level = 7, size = 4;
    EXPECT_DEATH(PCNN_CHECK_LT(level, size, "tuning level"),
                 "7 vs 4.*tuning level");
    EXPECT_DEATH(PCNN_CHECK(level < size, "plain form"), "plain form");
}

#ifdef PCNN_ENABLE_DCHECKS
TEST(CheckDeathTest, DchecksFireWhenEnabled)
{
    EXPECT_DEATH(PCNN_DCHECK_EQ(1, 2, "debug contract"), "1 vs 2");
}
#else
TEST(Check, DchecksCompileOutButStillParse)
{
    int calls = 0;
    auto next = [&calls]() { return ++calls; };
    PCNN_DCHECK_EQ(next(), 99, "never evaluated");
    PCNN_DCHECK(false, "never evaluated");
    EXPECT_EQ(calls, 0);
}
#endif

// ------------------------------------------- deployed contracts fire

TEST(CheckDeathTest, TensorAtOutOfRangeDies)
{
#ifdef PCNN_ENABLE_DCHECKS
    Tensor t(2, 3, 4, 5);
    EXPECT_DEATH(t.at(0, 3, 0, 0), "out of");
    EXPECT_DEATH(t.at(2, 0, 0, 0), "out of");
    const Tensor &ct = t;
    EXPECT_DEATH(ct.at(0, 0, 4, 0), "out of");
#else
    GTEST_SKIP() << "DCHECK bounds compiled out";
#endif
}

TEST(CheckDeathTest, ShapeMismatchedSgemmConsumerDies)
{
    Rng rng(7);
    FcLayer fc("FC", 16, 4, rng);
    Tensor bad(1, 5, 1, 1); // flattens to 5, weight wants 16
    EXPECT_DEATH(fc.forward(bad, false), "does not flatten");
}

TEST(CheckDeathTest, SgemmNullOperandDies)
{
    std::vector<float> c(4 * 4, 0.0f);
    EXPECT_DEATH(sgemm(false, false, 4, 4, 4, nullptr, nullptr,
                       c.data()),
                 "null operand");
}

TEST(CheckDeathTest, ConvGeometryUnderSizedDies)
{
    ConvGeom g;
    g.inC = 3;
    g.inH = g.inW = 4;
    g.kernel = 11; // larger than the padded input
    g.stride = 1;
    g.pad = 0;
    EXPECT_DEATH(g.outH(), "under-sized");
}

TEST(CheckDeathTest, InvalidResourceModelArgsDie)
{
    EXPECT_DEATH(optimalSms(0, 2, 13), "empty grid");
    EXPECT_DEATH(optimalSms(100, 0, 13), "TLP must be positive");
    EXPECT_DEATH(optimalSms(100, 2, 0), "no SMs");
}

TEST(CheckDeathTest, OutOfRangePlanDiesAtScheduler)
{
    const GpuSpec gpu = jetsonTx1();
    const OfflineCompiler compiler(gpu);
    CompiledPlan plan =
        compiler.compile(alexNet(), ageDetectionApp());
    ASSERT_FALSE(plan.layers.empty());

    RuntimeKernelScheduler rt(gpu);

    CompiledPlan bad_tlp = plan;
    bad_tlp.layers[0].kernel.optTLP = 0;
    EXPECT_DEATH(rt.execute(bad_tlp, pcnnPolicy()), "optTLP");

    CompiledPlan bad_sm = plan;
    bad_sm.layers[0].kernel.optSM = gpu.numSMs + 1;
    EXPECT_DEATH(rt.execute(bad_sm, pcnnPolicy()), "optSM");
}

TEST(CheckDeathTest, TuningPathViolationsDie)
{
    TuningEntry slow;
    slow.positions = {100};
    slow.predictedTimeS = 1.0;
    slow.speedup = 1.0;

    TuningEntry faster = slow;
    faster.predictedTimeS = 0.5;
    faster.speedup = 2.0;

    TuningTable ok;
    ok.push(slow);
    ok.push(faster);
    EXPECT_EQ(ok.levels(), 2u);

    TuningTable backwards;
    backwards.push(faster);
    EXPECT_DEATH(backwards.push(slow), "non-increasing");

    TuningEntry unperforated = faster;
    unperforated.positions = {200}; // more positions than level 0
    TuningTable regrow;
    regrow.push(slow);
    EXPECT_DEATH(regrow.push(unperforated), "un-perforated");

    TuningEntry nonsense;
    nonsense.positions = {100};
    nonsense.predictedTimeS = -1.0;
    EXPECT_DEATH(TuningTable().push(nonsense), "non-positive");
}

} // namespace
} // namespace pcnn
