/**
 * @file
 * Unit tests for the tensor module: Tensor, SGEMM, im2col/col2im,
 * softmax and entropy (Eq. 2).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "tensor/tensor.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {
namespace {

// ------------------------------------------------------------- Tensor

TEST(Tensor, DefaultIsScalarZero)
{
    Tensor t;
    EXPECT_EQ(t.size(), 1u);
    EXPECT_FLOAT_EQ(t[0], 0.0f);
}

TEST(Tensor, ShapeAndSize)
{
    Tensor t(2, 3, 4, 5);
    EXPECT_EQ(t.size(), 120u);
    EXPECT_EQ(t.shape().itemSize(), 60u);
    EXPECT_EQ(t.shape().str(), "[2,3,4,5]");
}

TEST(Tensor, AtIndexingIsRowMajorNchw)
{
    Tensor t(2, 3, 4, 5);
    t.at(1, 2, 3, 4) = 42.0f;
    EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 42.0f);
}

TEST(TensorDeath, OutOfBoundsPanics)
{
    Tensor t(1, 1, 2, 2);
    EXPECT_DEATH(t.at(0, 0, 2, 0), "out of");
}

TEST(Tensor, FillAndSum)
{
    Tensor t(1, 2, 2, 2);
    t.fill(0.5f);
    EXPECT_DOUBLE_EQ(t.sum(), 4.0);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t(1, 2, 3, 4);
    t.at(0, 1, 2, 3) = 9.0f;
    t.reshape(Shape{1, 24, 1, 1});
    EXPECT_FLOAT_EQ(t[23], 9.0f);
}

TEST(TensorDeath, ReshapeSizeMismatchPanics)
{
    Tensor t(1, 2, 3, 4);
    EXPECT_DEATH(t.reshape(Shape{1, 2, 3, 5}), "reshape");
}

TEST(Tensor, ItemExtractsBatchSlice)
{
    Tensor t(3, 2, 1, 1);
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i] = float(i);
    const Tensor item = t.item(1);
    EXPECT_EQ(item.shape().n, 1u);
    EXPECT_FLOAT_EQ(item[0], 2.0f);
    EXPECT_FLOAT_EQ(item[1], 3.0f);
}

TEST(Tensor, MaxAbsDiff)
{
    Tensor a(1, 1, 2, 2), b(1, 1, 2, 2);
    a.fill(1.0f);
    b.fill(1.0f);
    b.at(0, 0, 1, 1) = 1.25f;
    EXPECT_NEAR(a.maxAbsDiff(b), 0.25, 1e-7);
}

TEST(Tensor, GaussianFillMoments)
{
    Rng rng(1);
    Tensor t(8, 8, 8, 8);
    t.fillGaussian(rng, 2.0f, 0.5f);
    EXPECT_NEAR(t.sum() / double(t.size()), 2.0, 0.02);
}

// -------------------------------------------------------------- sgemm

/** Reference triple-loop GEMM for validation. */
void
refGemm(std::size_t m, std::size_t n, std::size_t k, const float *a,
        const float *b, float *c)
{
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < k; ++p)
                acc += double(a[i * k + p]) * double(b[p * n + j]);
            c[i * n + j] = float(acc);
        }
}

class SgemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(SgemmShapes, MatchesReference)
{
    const auto [m, n, k] = GetParam();
    Rng rng(m * 10007 + n * 101 + k);
    std::vector<float> a(m * k), b(k * n), c(m * n), ref(m * n);
    for (auto &x : a)
        x = float(rng.uniform(-1, 1));
    for (auto &x : b)
        x = float(rng.uniform(-1, 1));
    sgemm(false, false, m, n, k, a.data(), b.data(), c.data());
    refGemm(m, n, k, a.data(), b.data(), ref.data());
    for (std::size_t i = 0; i < c.size(); ++i)
        ASSERT_NEAR(c[i], ref[i], 1e-3) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SgemmShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 5, 7},
                      std::tuple{16, 16, 16}, std::tuple{32, 8, 64},
                      std::tuple{65, 65, 65}, std::tuple{1, 128, 9},
                      std::tuple{128, 1, 9}, std::tuple{17, 31, 129}));

TEST(Sgemm, TransposeA)
{
    // A stored as k x m, interpreted as m x k.
    const std::size_t m = 2, n = 3, k = 4;
    Rng rng(3);
    std::vector<float> at(k * m), a(m * k), b(k * n);
    for (auto &x : at)
        x = float(rng.uniform(-1, 1));
    for (auto &x : b)
        x = float(rng.uniform(-1, 1));
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t p = 0; p < k; ++p)
            a[i * k + p] = at[p * m + i];
    std::vector<float> c1(m * n), c2(m * n);
    sgemm(true, false, m, n, k, at.data(), b.data(), c1.data());
    sgemm(false, false, m, n, k, a.data(), b.data(), c2.data());
    for (std::size_t i = 0; i < c1.size(); ++i)
        EXPECT_NEAR(c1[i], c2[i], 1e-5);
}

TEST(Sgemm, TransposeB)
{
    const std::size_t m = 3, n = 2, k = 5;
    Rng rng(4);
    std::vector<float> a(m * k), bt(n * k), b(k * n);
    for (auto &x : a)
        x = float(rng.uniform(-1, 1));
    for (auto &x : bt)
        x = float(rng.uniform(-1, 1));
    for (std::size_t p = 0; p < k; ++p)
        for (std::size_t j = 0; j < n; ++j)
            b[p * n + j] = bt[j * k + p];
    std::vector<float> c1(m * n), c2(m * n);
    sgemm(false, true, m, n, k, a.data(), bt.data(), c1.data());
    sgemm(false, false, m, n, k, a.data(), b.data(), c2.data());
    for (std::size_t i = 0; i < c1.size(); ++i)
        EXPECT_NEAR(c1[i], c2[i], 1e-5);
}

TEST(Sgemm, BetaAccumulates)
{
    const std::size_t m = 2, n = 2, k = 2;
    std::vector<float> a{1, 0, 0, 1}, b{1, 2, 3, 4};
    std::vector<float> c{10, 10, 10, 10};
    sgemm(false, false, m, n, k, a.data(), b.data(), c.data(), 1.0f);
    EXPECT_FLOAT_EQ(c[0], 11.0f);
    EXPECT_FLOAT_EQ(c[3], 14.0f);
}

// ------------------------------------------------------------- im2col

TEST(ConvGeom, OutputDims)
{
    // AlexNet CONV1 geometry: 227 input, 11x11, stride 4 -> 55.
    ConvGeom g{3, 227, 227, 11, 4, 0};
    EXPECT_EQ(g.outH(), 55u);
    EXPECT_EQ(g.outW(), 55u);
    EXPECT_EQ(g.colRows(), 363u);
}

TEST(ConvGeom, PaddedSameDims)
{
    ConvGeom g{16, 13, 13, 3, 1, 1};
    EXPECT_EQ(g.outH(), 13u);
    EXPECT_EQ(g.outW(), 13u);
}

TEST(Im2col, IdentityKernelCopiesPixels)
{
    // 1x1 kernel: the cols matrix is the image itself flattened.
    Tensor x(1, 2, 3, 3);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = float(i);
    ConvGeom g{2, 3, 3, 1, 1, 0};
    std::vector<float> cols;
    im2col(x, 0, g, cols);
    ASSERT_EQ(cols.size(), 2u * 9u);
    for (std::size_t i = 0; i < cols.size(); ++i)
        EXPECT_FLOAT_EQ(cols[i], float(i));
}

TEST(Im2col, ZeroPaddingProducesZeros)
{
    Tensor x(1, 1, 2, 2);
    x.fill(1.0f);
    ConvGeom g{1, 2, 2, 3, 1, 1};
    std::vector<float> cols;
    im2col(x, 0, g, cols);
    // Output 2x2; the (0,0) position's top-left tap is padding.
    EXPECT_FLOAT_EQ(cols[0 * 4 + 0], 0.0f);
    // Center tap of (0,0) is the pixel (0,0).
    EXPECT_FLOAT_EQ(cols[4 * 4 + 0], 1.0f);
}

TEST(Im2colAt, SubsetMatchesFull)
{
    Rng rng(9);
    Tensor x(1, 3, 8, 8);
    x.fillGaussian(rng, 0, 1);
    ConvGeom g{3, 8, 8, 3, 1, 1};
    std::vector<float> full, part;
    im2col(x, 0, g, full);
    const std::vector<std::size_t> pos{0, 5, 17, 63};
    im2colAt(x, 0, g, pos, part);
    const std::size_t rows = g.colRows();
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t i = 0; i < pos.size(); ++i)
            ASSERT_FLOAT_EQ(part[r * pos.size() + i],
                            full[r * 64 + pos[i]]);
}

TEST(Col2im, AdjointOfIm2col)
{
    // <im2col(x), y> == <x, col2im(y)> — the operators are adjoint,
    // which is exactly what the conv backward pass relies on.
    Rng rng(10);
    Tensor x(1, 2, 5, 5);
    x.fillGaussian(rng, 0, 1);
    ConvGeom g{2, 5, 5, 3, 2, 1};
    std::vector<float> cols;
    im2col(x, 0, g, cols);

    std::vector<float> y(cols.size());
    for (auto &v : y)
        v = float(rng.uniform(-1, 1));

    double lhs = 0.0;
    for (std::size_t i = 0; i < cols.size(); ++i)
        lhs += double(cols[i]) * double(y[i]);

    Tensor xback(x.shape());
    col2im(y, 0, g, xback);
    double rhs = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        rhs += double(x[i]) * double(xback[i]);

    EXPECT_NEAR(lhs, rhs, 1e-3);
}

// -------------------------------------------------- softmax / entropy

TEST(Softmax, RowsSumToOne)
{
    Rng rng(2);
    Tensor logits(4, 6, 1, 1);
    logits.fillGaussian(rng, 0, 3);
    const Tensor p = softmax(logits);
    for (std::size_t i = 0; i < 4; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < 6; ++j) {
            s += p.data()[i * 6 + j];
            EXPECT_GT(p.data()[i * 6 + j], 0.0f);
        }
        EXPECT_NEAR(s, 1.0, 1e-5);
    }
}

TEST(Softmax, NumericallyStableOnLargeLogits)
{
    Tensor logits(1, 3, 1, 1);
    logits[0] = 1000.0f;
    logits[1] = 999.0f;
    logits[2] = -1000.0f;
    const Tensor p = softmax(logits);
    EXPECT_TRUE(std::isfinite(p[0]));
    EXPECT_GT(p[0], p[1]);
    EXPECT_NEAR(p[2], 0.0f, 1e-6);
}

TEST(Entropy, UniformIsLogK)
{
    const std::vector<float> u(8, 0.125f);
    EXPECT_NEAR(entropy(u.data(), 8), std::log(8.0), 1e-6);
}

TEST(Entropy, OneHotIsZero)
{
    const std::vector<float> p{1.0f, 0.0f, 0.0f};
    EXPECT_DOUBLE_EQ(entropy(p.data(), 3), 0.0);
}

TEST(Entropy, PaperExampleOrdering)
{
    // Section II.B: H(0.4,0.4,0.2) > H(0.7,0.2,0.1).
    const std::vector<float> p1{0.4f, 0.4f, 0.2f};
    const std::vector<float> p2{0.7f, 0.2f, 0.1f};
    EXPECT_GT(entropy(p1.data(), 3), entropy(p2.data(), 3));
}

TEST(BatchEntropy, AveragesRows)
{
    Tensor p(2, 2, 1, 1);
    p[0] = 0.5f;
    p[1] = 0.5f; // H = log 2
    p[2] = 1.0f;
    p[3] = 0.0f; // H = 0
    EXPECT_NEAR(batchEntropy(p), std::log(2.0) / 2.0, 1e-6);
}

TEST(Argmax, FindsLargest)
{
    const std::vector<float> row{0.1f, 0.7f, 0.2f};
    EXPECT_EQ(argmax(row.data(), 3), 1u);
}

TEST(ArgmaxRows, PerItem)
{
    Tensor t(2, 3, 1, 1);
    t[0] = 1;
    t[1] = 2;
    t[2] = 0;
    t[3] = 9;
    t[4] = 1;
    t[5] = 2;
    const auto idx = argmaxRows(t);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 1u);
    EXPECT_EQ(idx[1], 0u);
}

} // namespace
} // namespace pcnn
