/**
 * @file
 * Unit tests for the simulated vendor libraries: kernel selection per
 * architecture (Table IV), batch semantics, memory/OOM behaviour
 * (Table III), and latency orderings (Figs. 4-5).
 */

#include <gtest/gtest.h>

#include "gpu/gpu_spec.hh"
#include "libs/cublas_like.hh"
#include "libs/cudnn_like.hh"
#include "libs/dl_library.hh"
#include "libs/nervana_like.hh"
#include "nn/model_zoo.hh"

namespace pcnn {
namespace {

TEST(Libraries, Registry)
{
    const auto libs = allLibraries();
    ASSERT_EQ(libs.size(), 3u);
    EXPECT_EQ(libs[0]->name(), "cuBLAS");
    EXPECT_EQ(libs[1]->name(), "cuDNN");
    EXPECT_EQ(libs[2]->name(), "Nervana");
    EXPECT_EQ(libraryByName("cuDNN")->name(), "cuDNN");
}

TEST(Libraries, TableIVKernelSelection)
{
    const ConvSpec conv2 = alexNet().convs[1];
    CublasLike cublas;
    CudnnLike cudnn;
    // Table IV: cuBLAS on TX1 uses 128x64; on K20 uses 64x64.
    EXPECT_EQ(cublas.selectKernel(jetsonTx1(), conv2, 1).tile.str(),
              "128x64");
    EXPECT_EQ(cublas.selectKernel(k20c(), conv2, 1).tile.str(),
              "64x64");
    // cuDNN on TX1 uses 32x32; on K20 uses 64x64.
    EXPECT_EQ(cudnn.selectKernel(jetsonTx1(), conv2, 1).tile.str(),
              "32x32");
    EXPECT_EQ(cudnn.selectKernel(k20c(), conv2, 1).tile.str(),
              "64x64");
}

TEST(Libraries, NervanaMinBatch32)
{
    NervanaLike nervana;
    EXPECT_EQ(nervana.minBatch(), 32u);
    EXPECT_EQ(nervana.effectiveBatch(1), 32u);
    EXPECT_EQ(nervana.effectiveBatch(32), 32u);
    EXPECT_EQ(nervana.effectiveBatch(33), 64u);
    CublasLike cublas;
    EXPECT_EQ(cublas.effectiveBatch(1), 1u);
}

TEST(Libraries, NervanaPicksWideTilesWhenBatched)
{
    NervanaLike nervana;
    const ConvSpec conv5 = alexNet().convs[4]; // N = 169 per image
    const KernelConfig batched =
        nervana.selectKernel(jetsonTx1(), conv5, 128);
    EXPECT_EQ(batched.tile.m, 128u);
    EXPECT_EQ(batched.tile.n, 128u);
    // Assembly tuning markers.
    EXPECT_LT(batched.tile.otherInstsPerKtile, 8.0);
    EXPECT_LT(batched.tile.ldsFactor, 1.0);
}

TEST(Libraries, CaffeStylePerImageGemm)
{
    CublasLike cublas;
    CudnnLike cudnn;
    EXPECT_TRUE(cublas.perImageGemm());
    EXPECT_FALSE(cudnn.perImageGemm());

    const ConvSpec conv2 = alexNet().convs[1];
    const LayerPlan p_cublas =
        cublas.planLayer(jetsonTx1(), conv2, 128);
    const LayerPlan p_cudnn = cudnn.planLayer(jetsonTx1(), conv2, 128);
    // cuBLAS: 2 groups x 128 images = 256 launches, N = 729.
    EXPECT_EQ(p_cublas.launches, 256u);
    EXPECT_EQ(p_cublas.gemm.n, 729u);
    // cuDNN: 2 launches, batched N.
    EXPECT_EQ(p_cudnn.launches, 2u);
    EXPECT_EQ(p_cudnn.gemm.n, 729u * 128u);
}

TEST(Libraries, FootprintComponents)
{
    CudnnLike cudnn;
    const MemoryFootprint fp = cudnn.footprint(alexNet(), 128);
    EXPECT_GT(fp.weightBytes, 2e8);
    EXPECT_GT(fp.activationBytes, 1e8);
    EXPECT_GT(fp.workspaceBytes, 0.0);
}

// --------------------------------------------- Table III OOM pattern

TEST(TableIII, AlexNetFitsEverywhereBatched)
{
    const NetDescriptor net = alexNet();
    for (const auto &lib : allLibraries()) {
        for (const GpuSpec &gpu : allGpus()) {
            const LatencyEstimate est =
                lib->estimateLatency(gpu, net, net.paperBatch);
            EXPECT_FALSE(est.oom)
                << lib->name() << " AlexNet on " << gpu.name;
        }
    }
}

TEST(TableIII, CudnnAndNervanaOomVggOnTx1)
{
    const NetDescriptor vgg = vgg16();
    const GpuSpec tx1 = jetsonTx1();
    CudnnLike cudnn;
    NervanaLike nervana;
    CublasLike cublas;
    EXPECT_TRUE(cudnn.estimateLatency(tx1, vgg, 32).oom);
    EXPECT_TRUE(nervana.estimateLatency(tx1, vgg, 32).oom);
    // Caffe's single shared column buffer squeaks through.
    EXPECT_FALSE(cublas.estimateLatency(tx1, vgg, 32).oom);
}

TEST(TableIII, NervanaVggOomEvenNonBatchedOnTx1)
{
    // min batch 32 makes Nervana's "non-batched" run identical to its
    // batched one — both are marked x in Table III.
    NervanaLike nervana;
    EXPECT_TRUE(
        nervana.estimateLatency(jetsonTx1(), vgg16(), 1).oom);
}

TEST(TableIII, VggFitsOn970m)
{
    // Table III: all three libraries run VGG on the 970m (3 GB).
    const NetDescriptor vgg = vgg16();
    const GpuSpec nb = gtx970m();
    for (const auto &lib : allLibraries()) {
        EXPECT_FALSE(lib->estimateLatency(nb, vgg, 32).oom)
            << lib->name();
    }
}

TEST(TableIII, NonBatchedFitsOnTx1ForCublasAndCudnn)
{
    const GpuSpec tx1 = jetsonTx1();
    CublasLike cublas;
    CudnnLike cudnn;
    for (const NetDescriptor &net : paperNetworks()) {
        EXPECT_FALSE(cublas.estimateLatency(tx1, net, 1).oom)
            << net.name;
        EXPECT_FALSE(cudnn.estimateLatency(tx1, net, 1).oom)
            << net.name;
    }
}

// ------------------------------------------------- latency orderings

TEST(Latency, NervanaFastestBatchedOnTitanX)
{
    // Table III batched AlexNet on TitanX: Nervana < cuDNN < cuBLAS.
    const NetDescriptor net = alexNet();
    const GpuSpec gpu = titanX();
    CublasLike cublas;
    CudnnLike cudnn;
    NervanaLike nervana;
    const double t_cublas =
        cublas.estimateLatency(gpu, net, 128).totalS();
    const double t_cudnn =
        cudnn.estimateLatency(gpu, net, 128).totalS();
    const double t_nervana =
        nervana.estimateLatency(gpu, net, 128).totalS();
    EXPECT_LT(t_nervana, t_cudnn);
    EXPECT_LT(t_cudnn, t_cublas);
}

TEST(Latency, MobileMuchSlowerThanDesktop)
{
    // Table III: TX1 latencies are an order of magnitude above
    // TitanX for the same workload.
    CudnnLike cudnn;
    const NetDescriptor net = alexNet();
    const double t_titan =
        cudnn.estimateLatency(titanX(), net, 128).totalS();
    const double t_tx1 =
        cudnn.estimateLatency(jetsonTx1(), net, 128).totalS();
    EXPECT_GT(t_tx1, 8.0 * t_titan);
}

TEST(Latency, NonBatchingFasterResponseSlowerThroughput)
{
    // The core Section III.B observation, for cuDNN on TitanX.
    CudnnLike cudnn;
    const NetDescriptor net = alexNet();
    const GpuSpec gpu = titanX();
    const LatencyEstimate batched =
        cudnn.estimateLatency(gpu, net, 128);
    const LatencyEstimate single = cudnn.estimateLatency(gpu, net, 1);
    // Response time: single wins by a lot.
    EXPECT_LT(single.totalS(), batched.totalS() / 8.0);
    // Throughput: batched wins (Fig. 4 ratio < 1).
    EXPECT_LT(single.throughput(), batched.throughput());
}

TEST(Latency, CudnnBeatsCublasAtBatchOnTx1)
{
    // Batched cuDNN outperforms per-image cuBLAS (Table III TX1:
    // 1183 vs 1269 ms).
    CublasLike cublas;
    CudnnLike cudnn;
    const NetDescriptor net = alexNet();
    EXPECT_LT(cudnn.estimateLatency(jetsonTx1(), net, 128).totalS(),
              cublas.estimateLatency(jetsonTx1(), net, 128).totalS());
}

TEST(Latency, LayerTimePositiveForAllLayers)
{
    CudnnLike cudnn;
    for (const ConvSpec &c : googleNet().convs)
        EXPECT_GT(cudnn.layerTime(k20c(), c, 16), 0.0) << c.name;
}

// Property sweep: estimates stay sane across the full grid.
class LibGpuNetSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(LibGpuNetSweep, EstimateInvariants)
{
    const auto [li, gi, ni] = GetParam();
    const auto libs = allLibraries();
    const DlLibrary *lib = libs[li].get();
    const GpuSpec gpu = allGpus()[gi];
    const NetDescriptor net = paperNetworks()[ni];
    const LatencyEstimate est =
        lib->estimateLatency(gpu, net, net.paperBatch);
    if (est.oom)
        return;
    EXPECT_GT(est.totalS(), 0.0);
    EXPECT_LT(est.totalS(), 60.0) << "absurd latency";
    EXPECT_GT(est.throughput(), 0.1);
    EXPECT_GE(est.convTimeS, 0.0);
    EXPECT_GE(est.fcTimeS, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LibGpuNetSweep,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 4),
                       ::testing::Range(0, 3)));

} // namespace
} // namespace pcnn
