/**
 * @file
 * Integration tests: full train -> compile -> tune -> execute ->
 * calibrate pipelines, and cross-module consistency properties the
 * paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "data/synthetic.hh"
#include "libs/dl_library.hh"
#include "nn/model_zoo.hh"
#include "pcnn/pcnn.hh"
#include "train/trainer.hh"

namespace pcnn {
namespace {

TEST(Integration, TableIRelationship)
{
    // Table I analog: across increasing network capacity, accuracy
    // rises and output entropy falls.
    SyntheticTaskConfig cfg;
    cfg.difficulty = 0.6;
    cfg.seed = 90;
    SyntheticTask task(cfg);
    Dataset train_set = task.generate(1024);
    Dataset test_set = task.generate(256);

    std::vector<EvalResult> results;
    for (MiniSize size :
         {MiniSize::Small, MiniSize::Medium, MiniSize::Large}) {
        Rng rng(91);
        Network net = makeMiniNet(size, rng);
        TrainConfig tc;
        tc.epochs = 6;
        Trainer trainer(net, tc);
        trainer.fit(train_set);
        results.push_back(trainer.evaluate(test_set));
    }
    // Larger nets: higher accuracy (allow small noise), lower entropy.
    EXPECT_GT(results[2].accuracy + 0.03, results[0].accuracy);
    EXPECT_LT(results[2].meanEntropy, results[0].meanEntropy + 0.05);
    // The correlation the paper leans on: the lowest-entropy network
    // is (within training noise) also the most accurate one.
    std::size_t best_acc = 0, best_ent = 0;
    for (std::size_t i = 1; i < 3; ++i) {
        if (results[i].accuracy > results[best_acc].accuracy)
            best_acc = i;
        if (results[i].meanEntropy < results[best_ent].meanEntropy)
            best_ent = i;
    }
    EXPECT_GE(results[best_ent].accuracy + 0.03,
              results[best_acc].accuracy);
}

TEST(Integration, Fig16EntropyTracksAccuracy)
{
    // The Fig. 16 claim: along the entropy-guided tuning path,
    // rising entropy corresponds to falling true accuracy, and a
    // healthy speedup is reached within ~10% accuracy loss.
    SyntheticTaskConfig cfg;
    cfg.difficulty = 0.4;
    cfg.seed = 92;
    SyntheticTask task(cfg);
    Dataset train_set = task.generate(1024);
    Rng rng(93);
    Network net = makeMiniNet(MiniSize::Medium, rng);
    TrainConfig tc;
    tc.epochs = 5;
    Trainer trainer(net, tc);
    trainer.fit(train_set);

    const GpuSpec gpu = jetsonTx1();
    const OfflineCompiler compiler(gpu);
    // Batch 64 so the conv kernels dominate the simulated latency.
    const CompiledPlan plan =
        compiler.compileAtBatch(describe(net), 64);

    TunerConfig tcfg;
    tcfg.entropyThreshold = 2.0; // explore deep
    tcfg.maxIterations = 10;
    const AccuracyTuner tuner(gpu, tcfg);
    Dataset labeled = task.generate(256);
    const TuningTable table =
        tuner.tuneNetworkByAccuracy(net, plan, labeled);

    ASSERT_GE(table.levels(), 3u);
    const TuningEntry &first = table.entry(0);
    const TuningEntry &last = table.entry(table.levels() - 1);
    // Deeper perforation: more entropy, less accuracy, more speed.
    EXPECT_GE(last.entropy, first.entropy - 0.05);
    EXPECT_LE(last.accuracy, first.accuracy + 1e-9);
    EXPECT_GT(last.speedup, 1.2);
}

TEST(Integration, CompilerPlanExecutableOnSim)
{
    // Every plan the compiler emits must run on the simulator with
    // matching work accounting.
    for (const GpuSpec &gpu : allGpus()) {
        const OfflineCompiler compiler(gpu);
        const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 2);
        const RuntimeKernelScheduler rt(gpu);
        const SimResult r = rt.execute(plan, pcnnPolicy());
        EXPECT_GT(r.timeS, 0.0) << gpu.name;
        // Simulated FLOPs cover at least the useful conv FLOPs.
        EXPECT_GE(r.flops, alexNet().convFlopsPerImage() * 2 * 0.99)
            << gpu.name;
    }
}

TEST(Integration, SimAndTimeModelAgreeOnPlans)
{
    // The analytical latency (what the compiler promises) and the
    // simulated latency (what execution delivers) stay within 2x on
    // every platform — the property that makes Eq. 13 planning safe.
    for (const GpuSpec &gpu : allGpus()) {
        const OfflineCompiler compiler(gpu);
        const CompiledPlan plan = compiler.compileAtBatch(alexNet(), 4);
        const RuntimeKernelScheduler rt(gpu);
        const SimResult r = rt.execute(plan, pcnnPolicy());
        EXPECT_LT(r.timeS, plan.latencyS() * 2.0) << gpu.name;
        EXPECT_GT(r.timeS, plan.latencyS() * 0.4) << gpu.name;
    }
}

TEST(Integration, CalibrationRecoversFromHardData)
{
    // Tune on easy data, serve hard data: entropy spikes, the
    // calibrator steps back toward the exact network, entropy drops.
    SyntheticTaskConfig easy;
    easy.difficulty = 0.3;
    easy.seed = 94;
    SyntheticTask easy_task(easy);
    SyntheticTaskConfig hard = easy;
    hard.difficulty = 1.6;
    SyntheticTask hard_task(hard);

    Dataset train_set = easy_task.generate(1024);
    Rng rng(95);
    Network net = makeMiniNet(MiniSize::Medium, rng);
    TrainConfig tc;
    tc.epochs = 5;
    Trainer trainer(net, tc);
    trainer.fit(train_set);

    const GpuSpec gpu = jetsonTx1();
    const OfflineCompiler compiler(gpu);
    CompiledPlan plan = compiler.compileAtBatch(describe(net), 1);
    TunerConfig tcfg;
    tcfg.entropyThreshold = 1.1;
    Executor exec(net, plan, gpu, tcfg);
    Dataset tune_data = easy_task.generate(128);
    exec.tune(tune_data.batch(0, 128));
    const std::size_t tuned_level = exec.currentLevel();

    // Feed hard batches; if entropy violates the threshold the
    // executor must walk back toward level 0.
    Dataset hard_data = hard_task.generate(64);
    std::size_t last_level = tuned_level;
    for (int i = 0; i < 6; ++i) {
        const InferenceResult r = exec.infer(hard_data.batch(0, 64));
        EXPECT_LE(exec.currentLevel(), last_level);
        last_level = exec.currentLevel();
        (void)r;
    }
    EXPECT_LE(exec.currentLevel(), tuned_level);
}

TEST(Integration, LibraryAndPcnnKernelsConsistent)
{
    // P-CNN's tuned kernel must never be slower than the stock
    // library kernels on the same layer (it searches a superset).
    const GpuSpec gpu = jetsonTx1();
    const KernelTuner tuner(gpu);
    const auto libs = allLibraries();
    for (const ConvSpec &layer : alexNet().convs) {
        const GemmShape g = layer.gemmShape(1);
        const TunedKernel tuned =
            tuner.tune(g, TuneObjective::TimeModel);
        for (const auto &lib : libs) {
            if (lib->perImageGemm() || lib->minBatch() > 1)
                continue; // different execution semantics
            const KernelConfig cfg = lib->selectKernel(gpu, layer, 1);
            const SgemmModel model(gpu, cfg);
            EXPECT_LE(tuned.predictedTimeS,
                      model.kernelTime(g) * 1.01)
                << layer.name << " vs " << lib->name();
        }
    }
}

TEST(Integration, BackgroundThroughputBeatsNonBatched)
{
    // The Fig. 8 story end to end: the compiler's background batch
    // yields strictly better per-image time than batch 1.
    const GpuSpec gpu = k20c();
    const OfflineCompiler compiler(gpu);
    const CompiledPlan batched =
        compiler.compile(alexNet(), imageTaggingApp());
    const CompiledPlan single = compiler.compileAtBatch(alexNet(), 1);
    const double per_image_batched =
        batched.latencyS() / double(batched.batch);
    EXPECT_LT(per_image_batched, single.latencyS());
}

} // namespace
} // namespace pcnn
