/**
 * @file
 * Integration tests for the pcnn_cli tool: each subcommand is driven
 * through the real binary (path injected by CMake) and its output
 * checked for the expected content and exit status.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace pcnn {
namespace {

#ifndef PCNN_CLI_PATH
#error "PCNN_CLI_PATH must be defined by the build system"
#endif

/** Run a CLI invocation; returns (exit status, captured stdout). */
std::pair<int, std::string>
runCli(const std::string &args)
{
    const std::string cmd =
        std::string(PCNN_CLI_PATH) + " " + args + " 2>&1";
    FILE *pipe = ::popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    std::array<char, 512> buf;
    while (std::fgets(buf.data(), int(buf.size()), pipe))
        out += buf.data();
    const int status = ::pclose(pipe);
    return {status, out};
}

TEST(Cli, GpusListsAllPresets)
{
    const auto [status, out] = runCli("gpus");
    EXPECT_EQ(status, 0);
    for (const char *name : {"K20c", "TitanX", "970m", "TX1"})
        EXPECT_NE(out.find(name), std::string::npos) << name;
}

TEST(Cli, NetsListsZoo)
{
    const auto [status, out] = runCli("nets");
    EXPECT_EQ(status, 0);
    for (const char *name : {"AlexNet", "GoogLeNet", "VGGNet"})
        EXPECT_NE(out.find(name), std::string::npos) << name;
}

TEST(Cli, CompileShowsPlan)
{
    const auto [status, out] =
        runCli("compile --net AlexNet --gpu K20c --task interactive");
    EXPECT_EQ(status, 0);
    EXPECT_NE(out.find("CONV5"), std::string::npos);
    EXPECT_NE(out.find("optSM"), std::string::npos);
}

TEST(Cli, CompileSaveAndInspectRoundTrip)
{
    const std::string path = "/tmp/pcnn_cli_test_plan.bin";
    const auto [s1, o1] = runCli(
        "compile --net GoogLeNet --gpu TX1 --batch 4 --out " + path);
    EXPECT_EQ(s1, 0);
    EXPECT_NE(o1.find("saved"), std::string::npos);
    const auto [s2, o2] = runCli("inspect " + path);
    EXPECT_EQ(s2, 0);
    EXPECT_NE(o2.find("GoogLeNet"), std::string::npos);
    EXPECT_NE(o2.find("batch 4"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Cli, EstimateReportsOom)
{
    const auto [status, out] = runCli(
        "estimate --net VGGNet --gpu TX1 --lib cuDNN --batch 32");
    EXPECT_EQ(status, 0);
    EXPECT_NE(out.find("OUT OF MEMORY"), std::string::npos);
}

TEST(Cli, EstimateReportsLatency)
{
    const auto [status, out] = runCli(
        "estimate --net AlexNet --gpu TitanX --lib Nervana "
        "--batch 128");
    EXPECT_EQ(status, 0);
    EXPECT_NE(out.find("latency"), std::string::npos);
    EXPECT_NE(out.find("throughput"), std::string::npos);
}

TEST(Cli, SchedulersComparesZoo)
{
    const auto [status, out] = runCli(
        "schedulers --net AlexNet --gpu K20c --task background");
    EXPECT_EQ(status, 0);
    EXPECT_NE(out.find("P-CNN"), std::string::npos);
    EXPECT_NE(out.find("Ideal"), std::string::npos);
}

TEST(Cli, BadCommandFails)
{
    const auto [status, out] = runCli("frobnicate");
    EXPECT_NE(status, 0);
    EXPECT_NE(out.find("usage"), std::string::npos);
}

TEST(Cli, UnknownNetworkFails)
{
    const auto [status, out] =
        runCli("compile --net NotANet --gpu K20c");
    EXPECT_NE(status, 0);
    EXPECT_NE(out.find("unknown network"), std::string::npos);
}

TEST(Cli, InspectRejectsGarbageFile)
{
    const std::string path = "/tmp/pcnn_cli_garbage.bin";
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a plan", f);
    std::fclose(f);
    const auto [status, out] = runCli("inspect " + path);
    EXPECT_NE(status, 0);
    EXPECT_NE(out.find("cannot load"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace pcnn
