/**
 * @file
 * Tests for the pcnn_analyze static analyzer: the full tree must be
 * clean, every checked-in violation fixture must trip exactly its
 * rule, and the clean fixture must pass. Paths are injected by CMake.
 */

#include <gtest/gtest.h>

#include <array>
#include <string>

namespace pcnn {
namespace {

#ifndef PCNN_ANALYZE_PATH
#error "PCNN_ANALYZE_PATH must be defined by the build system"
#endif
#ifndef PCNN_REPO_ROOT
#error "PCNN_REPO_ROOT must be defined by the build system"
#endif
#ifndef PCNN_FIXTURE_DIR
#error "PCNN_FIXTURE_DIR must be defined by the build system"
#endif

/** Run an analyzer invocation; returns (exit status, output). */
std::pair<int, std::string>
runAnalyze(const std::string &args)
{
    const std::string cmd =
        std::string(PCNN_ANALYZE_PATH) + " " + args + " 2>&1";
    FILE *pipe = ::popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    std::array<char, 512> buf;
    while (std::fgets(buf.data(), int(buf.size()), pipe))
        out += buf.data();
    const int raw = ::pclose(pipe);
    return {WIFEXITED(raw) ? WEXITSTATUS(raw) : -1, out};
}

std::string
rootArgs()
{
    return std::string("--root ") + PCNN_REPO_ROOT;
}

std::string
fixture(const char *name)
{
    return std::string(PCNN_FIXTURE_DIR) + "/" + name;
}

/** One violation fixture: non-zero exit, its rule id in the output. */
void
expectViolation(const char *file, const char *rule)
{
    const auto [status, out] =
        runAnalyze(rootArgs() + " " + fixture(file));
    EXPECT_EQ(status, 1) << out;
    EXPECT_NE(out.find(std::string(rule) + ":"), std::string::npos)
        << "expected rule '" << rule << "' in:\n"
        << out;
    EXPECT_NE(out.find("1 violation"), std::string::npos) << out;
}

TEST(Analyze, WholeTreeIsClean)
{
    const auto [status, out] = runAnalyze(rootArgs());
    EXPECT_EQ(status, 0) << out;
    EXPECT_NE(out.find("clean"), std::string::npos) << out;
}

TEST(Analyze, CleanFixturePasses)
{
    const auto [status, out] =
        runAnalyze(rootArgs() + " " + fixture("clean.cc"));
    EXPECT_EQ(status, 0) << out;
}

TEST(Analyze, FlagsRawNew)
{
    expectViolation("raw_new.cc", "raw-new");
}

TEST(Analyze, FlagsLibcRand)
{
    expectViolation("libc_rand.cc", "libc-rand");
}

TEST(Analyze, FlagsIncludeGuard)
{
    expectViolation("include_guard.hh", "include-guard");
}

TEST(Analyze, FlagsMutableGlobal)
{
    expectViolation("mutable_global.cc", "mutable-global");
}

TEST(Analyze, FlagsMutexWithoutGuardedBy)
{
    expectViolation("mutex_guard.hh", "mutex-guard");
}

TEST(Analyze, FlagsHotPathAllocation)
{
    const auto [status, out] =
        runAnalyze(rootArgs() + " " + fixture("hot_path_alloc.cc"));
    EXPECT_EQ(status, 1) << out;
    // The message must carry the call chain from the tagged root.
    EXPECT_NE(out.find("hot-path-alloc:"), std::string::npos) << out;
    EXPECT_NE(out.find("via appendSample"), std::string::npos) << out;
}

TEST(Analyze, FlagsInt8HotPathAllocation)
{
    const auto [status, out] =
        runAnalyze(rootArgs() + " " + fixture("int8_hot_alloc.cc"));
    EXPECT_EQ(status, 1) << out;
    EXPECT_NE(out.find("hot-path-alloc:"), std::string::npos) << out;
    EXPECT_NE(out.find("via qgemmTileInt8"), std::string::npos) << out;
}

TEST(Analyze, FlagsUncheckedReaderCopy)
{
    expectViolation("reader_check.cc", "reader-check");
}

TEST(Analyze, FlagsUnguardedScheduleReader)
{
    // The plan-v4 schedule section shape: a record count drives the
    // reads that follow, so a reader without a guard between the two
    // is exactly the hostile-truncation bug class.
    expectViolation("schedule_reader.cc", "reader-check");
}

TEST(Analyze, MissingFileIsUsageError)
{
    const auto [status, out] =
        runAnalyze(rootArgs() + " /nonexistent/nope.cc");
    EXPECT_EQ(status, 2) << out;
}

} // namespace
} // namespace pcnn
