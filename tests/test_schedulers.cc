/**
 * @file
 * Tests for the task/satisfaction modules and the scheduler zoo:
 * the SoC orderings behind Figs. 13-15.
 */

#include <gtest/gtest.h>

#include "nn/model_zoo.hh"
#include "pcnn/satisfaction.hh"
#include "pcnn/schedulers/scheduler.hh"
#include "pcnn/task.hh"

namespace pcnn {
namespace {

// ---------------------------------------------------------- task/req

TEST(Task, ClassNames)
{
    EXPECT_EQ(taskClassName(TaskClass::Interactive), "interactive");
    EXPECT_EQ(taskClassName(TaskClass::Background), "background");
}

TEST(Task, InteractiveRequirementIsHciThresholds)
{
    const UserRequirement req = inferRequirement(ageDetectionApp());
    EXPECT_DOUBLE_EQ(req.imperceptibleS, 0.1);
    EXPECT_DOUBLE_EQ(req.tolerableS, 3.0);
    EXPECT_FALSE(req.timeInsensitive);
}

TEST(Task, RealTimeDeadlineIsFramePeriod)
{
    const UserRequirement req =
        inferRequirement(videoSurveillanceApp());
    EXPECT_NEAR(req.imperceptibleS, 1.0 / 60.0, 1e-12);
    EXPECT_DOUBLE_EQ(req.tolerableS, req.imperceptibleS);
}

TEST(Task, BackgroundIsTimeInsensitive)
{
    const UserRequirement req = inferRequirement(imageTaggingApp());
    EXPECT_TRUE(req.timeInsensitive);
}

TEST(Task, AccuracySensitivityTightensEntropy)
{
    const UserRequirement strict =
        inferRequirement(videoSurveillanceApp());
    const UserRequirement loose = inferRequirement(ageDetectionApp());
    EXPECT_LT(strict.entropyThreshold, loose.entropyThreshold);
}

// ------------------------------------------------------ satisfaction

TEST(Satisfaction, SocTimeRegions)
{
    UserRequirement req;
    req.imperceptibleS = 0.1;
    req.tolerableS = 3.0;
    EXPECT_DOUBLE_EQ(socTime(0.05, req), 1.0);  // imperceptible
    EXPECT_DOUBLE_EQ(socTime(0.1, req), 1.0);   // boundary
    EXPECT_NEAR(socTime(1.55, req), 0.5, 1e-9); // halfway tolerable
    EXPECT_DOUBLE_EQ(socTime(3.0, req), 0.0);   // unusable
    EXPECT_DOUBLE_EQ(socTime(100.0, req), 0.0);
}

TEST(Satisfaction, RealTimeHasNoTolerableRegion)
{
    const UserRequirement req =
        inferRequirement(videoSurveillanceApp());
    EXPECT_DOUBLE_EQ(socTime(req.imperceptibleS * 0.9, req), 1.0);
    EXPECT_DOUBLE_EQ(socTime(req.imperceptibleS * 1.01, req), 0.0);
}

TEST(Satisfaction, BackgroundAlwaysSatisfied)
{
    const UserRequirement req = inferRequirement(imageTaggingApp());
    EXPECT_DOUBLE_EQ(socTime(1e6, req), 1.0);
}

TEST(Satisfaction, SocAccuracyThreshold)
{
    UserRequirement req;
    req.entropyThreshold = 1.0;
    EXPECT_DOUBLE_EQ(socAccuracy(0.5, req), 1.0);
    EXPECT_DOUBLE_EQ(socAccuracy(1.0, req), 1.0);
    EXPECT_NEAR(socAccuracy(2.0, req), 0.5, 1e-12);
}

TEST(Satisfaction, SocComposition)
{
    UserRequirement req;
    req.imperceptibleS = 0.1;
    req.tolerableS = 3.0;
    req.entropyThreshold = 1.0;
    // Eq. 15: SoC = SoC_time * SoC_accuracy / E.
    EXPECT_NEAR(soc(0.05, 2.0, 4.0, req), 1.0 * 0.5 / 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(soc(10.0, 0.5, 4.0, req), 0.0);
}

// --------------------------------------------------------- schedulers

TEST(Schedulers, ZooOrder)
{
    const auto zoo = allSchedulers();
    ASSERT_EQ(zoo.size(), 6u);
    EXPECT_EQ(zoo[0]->name(), "Perf-preferred");
    EXPECT_EQ(zoo[1]->name(), "Energy-efficient");
    EXPECT_EQ(zoo[2]->name(), "QPE");
    EXPECT_EQ(zoo[3]->name(), "QPE+");
    EXPECT_EQ(zoo[4]->name(), "P-CNN");
    EXPECT_EQ(zoo[5]->name(), "Ideal");
}

class SchedFixture : public ::testing::Test
{
  protected:
    /** Run every scheduler on one (app, net, gpu) triple. */
    std::vector<ScheduleOutcome>
    runAll(const AppSpec &app, const NetDescriptor &net,
           const GpuSpec &gpu)
    {
        const ScheduleContext ctx = makeContext(app, net, gpu);
        std::vector<ScheduleOutcome> outs;
        for (const auto &s : allSchedulers())
            outs.push_back(s->run(ctx));
        return outs;
    }

    static const ScheduleOutcome &
    byName(const std::vector<ScheduleOutcome> &outs,
           const std::string &name)
    {
        for (const auto &o : outs)
            if (o.scheduler == name)
                return o;
        throw std::runtime_error("missing scheduler " + name);
    }
};

TEST_F(SchedFixture, InteractiveOnK20Orderings)
{
    const auto outs = runAll(ageDetectionApp(), alexNet(), k20c());

    const auto &perf = byName(outs, "Perf-preferred");
    const auto &qpe = byName(outs, "QPE");
    const auto &qpe_plus = byName(outs, "QPE+");
    const auto &pcnn_s = byName(outs, "P-CNN");
    const auto &ideal = byName(outs, "Ideal");

    // Everyone with a time model stays imperceptible on the server
    // GPU (Fig. 13a).
    EXPECT_DOUBLE_EQ(perf.socTimeScore, 1.0);
    EXPECT_DOUBLE_EQ(qpe.socTimeScore, 1.0);
    EXPECT_DOUBLE_EQ(pcnn_s.socTimeScore, 1.0);

    // QPE+ saves energy over QPE by gating idle SMs (Fig. 14a).
    EXPECT_LT(qpe_plus.energyPerImageJ, qpe.energyPerImageJ);
    // P-CNN saves further energy via accuracy tuning.
    EXPECT_LT(pcnn_s.energyPerImageJ, qpe_plus.energyPerImageJ);
    EXPECT_GT(pcnn_s.tuningSpeedup, 1.0);

    // SoC ordering (Fig. 15a): P-CNN beats every baseline; only the
    // oracle may beat P-CNN.
    EXPECT_GT(pcnn_s.socScore, qpe_plus.socScore);
    EXPECT_GT(qpe_plus.socScore, qpe.socScore);
    EXPECT_GE(ideal.socScore, pcnn_s.socScore);
}

TEST_F(SchedFixture, EnergyEfficientMissesRealTimeDeadline)
{
    const auto outs =
        runAll(videoSurveillanceApp(), googleNet(), k20c());
    const auto &ee = byName(outs, "Energy-efficient");
    EXPECT_FALSE(ee.deadlineMet);
    EXPECT_DOUBLE_EQ(ee.socScore, 0.0); // the 'x' of Fig. 15
    // P-CNN meets it.
    EXPECT_TRUE(byName(outs, "P-CNN").deadlineMet);
}

TEST_F(SchedFixture, OnlyApproximationMeetsTx1RealTime)
{
    // Fig. 15(b): on TX1 every scheduler misses the 60 FPS deadline
    // except P-CNN and Ideal, which shed work via perforation.
    const auto outs =
        runAll(videoSurveillanceApp(), googleNet(), jetsonTx1());
    EXPECT_FALSE(byName(outs, "Perf-preferred").deadlineMet);
    EXPECT_FALSE(byName(outs, "Energy-efficient").deadlineMet);
    EXPECT_FALSE(byName(outs, "QPE").deadlineMet);
    EXPECT_FALSE(byName(outs, "QPE+").deadlineMet);
    EXPECT_TRUE(byName(outs, "P-CNN").deadlineMet);
    EXPECT_TRUE(byName(outs, "Ideal").deadlineMet);
}

TEST_F(SchedFixture, BackgroundTaskEnergyOrdering)
{
    const auto outs = runAll(imageTaggingApp(), alexNet(), k20c());
    const auto &perf = byName(outs, "Perf-preferred");
    const auto &ee = byName(outs, "Energy-efficient");
    const auto &pcnn_s = byName(outs, "P-CNN");
    // Batching amortizes weight traffic: per-image energy of the
    // batched schedulers beats non-batched execution.
    EXPECT_LT(ee.energyPerImageJ, perf.energyPerImageJ);
    EXPECT_LE(pcnn_s.energyPerImageJ, ee.energyPerImageJ * 1.05);
    // Background SoC_time is always 1 — nobody gets an 'x'.
    for (const auto &o : outs)
        EXPECT_DOUBLE_EQ(o.socTimeScore, 1.0) << o.scheduler;
}

TEST_F(SchedFixture, SurveillanceKeepsAccuracy)
{
    // Accuracy-sensitive task: P-CNN must not perforate much; its
    // entropy stays under the strict threshold.
    const auto outs =
        runAll(videoSurveillanceApp(), googleNet(), k20c());
    const auto &pcnn_s = byName(outs, "P-CNN");
    const ScheduleContext ctx =
        makeContext(videoSurveillanceApp(), googleNet(), k20c());
    EXPECT_LE(pcnn_s.entropy,
              ctx.requirement.entropyThreshold + 1e-9);
    EXPECT_DOUBLE_EQ(pcnn_s.socAccuracyScore, 1.0);
}

TEST_F(SchedFixture, IdealAtLeastAsGoodEverywhere)
{
    const AppSpec apps[] = {ageDetectionApp(), videoSurveillanceApp(),
                            imageTaggingApp()};
    const GpuSpec gpus[] = {k20c(), jetsonTx1()};
    for (const auto &app : apps) {
        for (const auto &gpu : gpus) {
            const NetDescriptor net =
                app.taskClass == TaskClass::RealTime ? googleNet()
                                                     : alexNet();
            const auto outs = runAll(app, net, gpu);
            const double ideal = byName(outs, "Ideal").socScore;
            for (const auto &o : outs)
                EXPECT_GE(ideal + 1e-12, o.socScore)
                    << o.scheduler << " beats Ideal on " << app.name
                    << "/" << gpu.name;
        }
    }
}

} // namespace
} // namespace pcnn
