/**
 * @file
 * Unit tests for the nn module: layers (including perforated
 * convolution), gradients, network plumbing, and the model zoo
 * against the published architecture numbers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv_layer.hh"
#include "nn/dropout_layer.hh"
#include "nn/fc_layer.hh"
#include "nn/model_zoo.hh"
#include "nn/network.hh"
#include "nn/pool_layer.hh"
#include "nn/relu_layer.hh"
#include "tensor/tensor_ops.hh"

namespace pcnn {
namespace {

ConvSpec
spec(std::size_t in_c, std::size_t out_c, std::size_t k,
     std::size_t stride, std::size_t pad, std::size_t hw,
     std::size_t groups = 1)
{
    ConvSpec s;
    s.name = "conv";
    s.inC = in_c;
    s.outC = out_c;
    s.kernel = k;
    s.stride = stride;
    s.pad = pad;
    s.inH = hw;
    s.inW = hw;
    s.groups = groups;
    return s;
}

/** Direct (loop-nest) convolution reference. */
Tensor
refConv(const Tensor &x, const Tensor &w, const Tensor &b,
        const ConvSpec &s)
{
    const std::size_t oh = s.outH(), ow = s.outW();
    const std::size_t in_cg = s.inC / s.groups;
    const std::size_t out_cg = s.outC / s.groups;
    Tensor y(x.shape().n, s.outC, oh, ow);
    for (std::size_t n = 0; n < x.shape().n; ++n) {
        for (std::size_t f = 0; f < s.outC; ++f) {
            const std::size_t g = f / out_cg;
            for (std::size_t oy = 0; oy < oh; ++oy) {
                for (std::size_t ox = 0; ox < ow; ++ox) {
                    double acc = b.data()[f];
                    for (std::size_t c = 0; c < in_cg; ++c) {
                        for (std::size_t ky = 0; ky < s.kernel; ++ky) {
                            for (std::size_t kx = 0; kx < s.kernel;
                                 ++kx) {
                                const long iy =
                                    long(oy * s.stride + ky) -
                                    long(s.pad);
                                const long ix =
                                    long(ox * s.stride + kx) -
                                    long(s.pad);
                                if (iy < 0 || iy >= long(s.inH) ||
                                    ix < 0 || ix >= long(s.inW)) {
                                    continue;
                                }
                                acc += double(x.at(n, g * in_cg + c,
                                                   iy, ix)) *
                                       double(w.at(f, c, ky, kx));
                            }
                        }
                    }
                    y.at(n, f, oy, ox) = float(acc);
                }
            }
        }
    }
    return y;
}

// ---------------------------------------------------------- ConvLayer

TEST(ConvLayer, MatchesDirectConvolution)
{
    Rng rng(1);
    ConvLayer layer(spec(3, 8, 3, 1, 1, 7), rng);
    Tensor x(2, 3, 7, 7);
    x.fillGaussian(rng, 0, 1);
    const Tensor y = layer.forward(x, false);

    Tensor w = layer.params()[0]->value;
    Tensor b = layer.params()[1]->value;
    const Tensor ref = refConv(x, w, b, layer.spec());
    EXPECT_LT(y.maxAbsDiff(ref), 1e-4);
}

TEST(ConvLayer, StridedMatchesDirect)
{
    Rng rng(2);
    ConvLayer layer(spec(2, 4, 5, 2, 2, 11), rng);
    Tensor x(1, 2, 11, 11);
    x.fillGaussian(rng, 0, 1);
    const Tensor y = layer.forward(x, false);
    const Tensor ref = refConv(x, layer.params()[0]->value,
                               layer.params()[1]->value, layer.spec());
    EXPECT_LT(y.maxAbsDiff(ref), 1e-4);
}

TEST(ConvLayer, GroupedMatchesDirect)
{
    Rng rng(3);
    ConvLayer layer(spec(4, 6, 3, 1, 1, 5, 2), rng);
    Tensor x(2, 4, 5, 5);
    x.fillGaussian(rng, 0, 1);
    const Tensor y = layer.forward(x, false);
    const Tensor ref = refConv(x, layer.params()[0]->value,
                               layer.params()[1]->value, layer.spec());
    EXPECT_LT(y.maxAbsDiff(ref), 1e-4);
}

TEST(ConvLayer, OutputShape)
{
    Rng rng(4);
    ConvLayer layer(spec(3, 96, 11, 4, 0, 227), rng);
    const Shape out = layer.outputShape(Shape{2, 3, 227, 227});
    EXPECT_EQ(out.n, 2u);
    EXPECT_EQ(out.c, 96u);
    EXPECT_EQ(out.h, 55u);
}

TEST(ConvLayer, PerforationKeepsShape)
{
    Rng rng(5);
    ConvLayer layer(spec(3, 8, 3, 1, 1, 16), rng);
    Tensor x(1, 3, 16, 16);
    x.fillGaussian(rng, 0, 1);
    layer.setComputedPositions(64);
    const Tensor y = layer.forward(x, false);
    EXPECT_EQ(y.shape(), (Shape{1, 8, 16, 16}));
    EXPECT_TRUE(layer.perforated());
    EXPECT_NEAR(layer.perforationRate(),
                1.0 - double(layer.computedPositions()) / 256.0, 1e-9);
}

TEST(ConvLayer, PerforationExactAtComputedPositions)
{
    // Values at computed grid points must equal the exact conv.
    Rng rng(6);
    ConvLayer exact(spec(2, 4, 3, 1, 1, 12), rng);
    Rng rng2(6);
    ConvLayer perf(spec(2, 4, 3, 1, 1, 12), rng2);
    Tensor x(1, 2, 12, 12);
    x.fillGaussian(rng, 0, 1);
    // Same seed -> same weights.
    const Tensor ye = exact.forward(x, false);
    perf.setComputedPositions(36);
    const Tensor yp = perf.forward(x, false);

    // Interpolated outputs approximate the exact ones on smooth-ish
    // inputs; at least the overall error stays bounded.
    EXPECT_LT(yp.maxAbsDiff(ye), 10.0);
    // And a decent fraction of positions (the computed ones) match
    // exactly.
    std::size_t exact_hits = 0;
    for (std::size_t i = 0; i < yp.size(); ++i)
        exact_hits += std::abs(yp[i] - ye[i]) < 1e-5f;
    EXPECT_GE(exact_hits, 4u * perf.computedPositions());
}

TEST(ConvLayer, PerforationFullGridIsExact)
{
    Rng rng(7);
    ConvLayer layer(spec(1, 2, 3, 1, 1, 6), rng);
    Tensor x(1, 1, 6, 6);
    x.fillGaussian(rng, 0, 1);
    const Tensor y0 = layer.forward(x, false);
    layer.setComputedPositions(36); // full
    EXPECT_FALSE(layer.perforated());
    const Tensor y1 = layer.forward(x, false);
    EXPECT_LT(y0.maxAbsDiff(y1), 1e-7);
}

TEST(ConvLayer, PerforationRoundTripRestores)
{
    Rng rng(8);
    ConvLayer layer(spec(1, 2, 3, 1, 1, 8), rng);
    Tensor x(1, 1, 8, 8);
    x.fillGaussian(rng, 0, 1);
    const Tensor y0 = layer.forward(x, false);
    layer.setComputedPositions(16);
    layer.setComputedPositions(0); // restore
    const Tensor y1 = layer.forward(x, false);
    EXPECT_LT(y0.maxAbsDiff(y1), 1e-7);
}

TEST(ConvLayerDeath, TrainingWhilePerforatedPanics)
{
    Rng rng(9);
    ConvLayer layer(spec(1, 2, 3, 1, 1, 8), rng);
    Tensor x(1, 1, 8, 8);
    layer.setComputedPositions(16);
    EXPECT_DEATH(layer.forward(x, true), "perforation");
}

// Parameterized sweep: perforation must monotonically reduce the
// number of computed positions and never break shapes.
class PerforationSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PerforationSweep, AchievedCloseToRequested)
{
    Rng rng(10);
    ConvLayer layer(spec(1, 2, 3, 1, 1, 16), rng);
    const std::size_t req = GetParam();
    layer.setComputedPositions(req);
    const std::size_t got = layer.computedPositions();
    EXPECT_GE(got, 1u);
    EXPECT_LE(got, 256u);
    // Achieved count is within a factor of ~2 of the request (grid
    // realization rounds both dimensions).
    EXPECT_LE(got, 2 * req + 8);
    EXPECT_GE(got * 2 + 8, req);

    Tensor x(1, 1, 16, 16);
    x.fillGaussian(rng, 0, 1);
    EXPECT_EQ(layer.forward(x, false).shape(), (Shape{1, 2, 16, 16}));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PerforationSweep,
                         ::testing::Values(1, 4, 9, 16, 36, 64, 100,
                                           144, 196, 256));

// -------------------------------------------------- numeric gradients

/** Central-difference gradient check of a layer's parameters. */
void
gradCheck(Layer &layer, const Shape &in_shape, double tol)
{
    Rng rng(77);
    Tensor x(in_shape);
    x.fillGaussian(rng, 0, 1);

    // Scalar objective: sum of outputs weighted by fixed noise.
    Tensor w_obj(layer.outputShape(in_shape));
    w_obj.fillGaussian(rng, 0, 1);

    auto objective = [&]() {
        const Tensor y = layer.forward(x, true);
        double s = 0.0;
        for (std::size_t i = 0; i < y.size(); ++i)
            s += double(y[i]) * double(w_obj[i]);
        return s;
    };

    // Analytic gradients.
    objective();
    for (Param *p : layer.params())
        p->zeroGrad();
    Tensor dy(w_obj.shape());
    for (std::size_t i = 0; i < dy.size(); ++i)
        dy[i] = w_obj[i];
    layer.backward(dy);

    // Compare a handful of coordinates numerically.
    const float eps = 1e-2f;
    for (Param *p : layer.params()) {
        const std::size_t stride = std::max<std::size_t>(
            1, p->value.size() / 5);
        for (std::size_t i = 0; i < p->value.size(); i += stride) {
            // Direct writes to a Param must announce themselves so
            // packed-weight caches (DESIGN.md §5d) are invalidated.
            const float orig = p->value[i];
            p->value[i] = orig + eps;
            p->markUpdated();
            const double up = objective();
            p->value[i] = orig - eps;
            p->markUpdated();
            const double dn = objective();
            p->value[i] = orig;
            p->markUpdated();
            const double numeric = (up - dn) / (2.0 * eps);
            ASSERT_NEAR(p->grad[i], numeric,
                        tol * (1.0 + std::abs(numeric)))
                << "param coord " << i;
        }
    }
}

TEST(Gradients, ConvLayer)
{
    Rng rng(20);
    ConvLayer layer(spec(2, 3, 3, 1, 1, 5), rng);
    gradCheck(layer, Shape{2, 2, 5, 5}, 2e-2);
}

TEST(Gradients, GroupedConvLayer)
{
    Rng rng(21);
    ConvLayer layer(spec(4, 4, 3, 1, 1, 5, 2), rng);
    gradCheck(layer, Shape{1, 4, 5, 5}, 2e-2);
}

TEST(Gradients, FcLayer)
{
    Rng rng(22);
    FcLayer layer("fc", 12, 5, rng);
    gradCheck(layer, Shape{3, 12, 1, 1}, 2e-2);
}

TEST(Gradients, ConvInputGradient)
{
    // Check dx numerically as well (needed for stacked layers).
    Rng rng(23);
    ConvLayer layer(spec(2, 2, 3, 1, 0, 5), rng);
    Tensor x(1, 2, 5, 5);
    x.fillGaussian(rng, 0, 1);
    Tensor w_obj(layer.outputShape(x.shape()));
    w_obj.fillGaussian(rng, 0, 1);

    auto objective = [&]() {
        const Tensor y = layer.forward(x, true);
        double s = 0.0;
        for (std::size_t i = 0; i < y.size(); ++i)
            s += double(y[i]) * double(w_obj[i]);
        return s;
    };
    objective();
    Tensor dy = w_obj;
    const Tensor dx = layer.backward(dy);

    const float eps = 1e-2f;
    for (std::size_t i = 0; i < x.size(); i += 7) {
        const float orig = x[i];
        x[i] = orig + eps;
        const double up = objective();
        x[i] = orig - eps;
        const double dn = objective();
        x[i] = orig;
        const double numeric = (up - dn) / (2.0 * eps);
        ASSERT_NEAR(dx[i], numeric, 2e-2 * (1.0 + std::abs(numeric)));
    }
}

// -------------------------------------------------------- other layers

TEST(ReluLayer, ForwardClampsNegatives)
{
    ReluLayer relu("r");
    Tensor x(1, 1, 1, 4);
    x[0] = -1;
    x[1] = 2;
    x[2] = 0;
    x[3] = -0.5;
    const Tensor y = relu.forward(x, false);
    EXPECT_FLOAT_EQ(y[0], 0);
    EXPECT_FLOAT_EQ(y[1], 2);
    EXPECT_FLOAT_EQ(y[2], 0);
}

TEST(ReluLayer, BackwardMasks)
{
    ReluLayer relu("r");
    Tensor x(1, 1, 1, 3);
    x[0] = -1;
    x[1] = 2;
    x[2] = 3;
    relu.forward(x, true);
    Tensor dy(x.shape());
    dy.fill(1.0f);
    const Tensor dx = relu.backward(dy);
    EXPECT_FLOAT_EQ(dx[0], 0);
    EXPECT_FLOAT_EQ(dx[1], 1);
}

TEST(MaxPoolLayer, ForwardPicksMax)
{
    MaxPoolLayer pool("p", 2, 2);
    Tensor x(1, 1, 2, 2);
    x[0] = 1;
    x[1] = 5;
    x[2] = 3;
    x[3] = 2;
    const Tensor y = pool.forward(x, false);
    ASSERT_EQ(y.size(), 1u);
    EXPECT_FLOAT_EQ(y[0], 5);
}

TEST(MaxPoolLayer, OverlappingWindows)
{
    // AlexNet-style 3x3 stride-2 pooling: 5 -> 2.
    MaxPoolLayer pool("p", 3, 2);
    const Shape out = pool.outputShape(Shape{1, 1, 5, 5});
    EXPECT_EQ(out.h, 2u);
}

TEST(MaxPoolLayer, BackwardRoutesToArgmax)
{
    MaxPoolLayer pool("p", 2, 2);
    Tensor x(1, 1, 2, 2);
    x[0] = 1;
    x[1] = 5;
    x[2] = 3;
    x[3] = 2;
    pool.forward(x, true);
    Tensor dy(1, 1, 1, 1);
    dy[0] = 7.0f;
    const Tensor dx = pool.backward(dy);
    EXPECT_FLOAT_EQ(dx[1], 7.0f);
    EXPECT_FLOAT_EQ(dx[0], 0.0f);
}

TEST(FcLayer, LinearInInput)
{
    Rng rng(30);
    FcLayer fc("fc", 4, 2, rng);
    Tensor x(1, 4, 1, 1);
    x.fill(0.0f);
    const Tensor y0 = fc.forward(x, false);
    x.fill(2.0f);
    const Tensor y2 = fc.forward(x, false);
    x.fill(1.0f);
    const Tensor y1 = fc.forward(x, false);
    // Affine: y2 - y0 == 2*(y1 - y0).
    for (std::size_t j = 0; j < 2; ++j)
        EXPECT_NEAR(y2[j] - y0[j], 2.0f * (y1[j] - y0[j]), 1e-4);
}

TEST(DropoutLayer, InferenceIsIdentity)
{
    Rng rng(31);
    DropoutLayer drop("d", 0.5, rng);
    Tensor x(1, 1, 1, 8);
    x.fillGaussian(rng, 0, 1);
    const Tensor y = drop.forward(x, false);
    EXPECT_LT(y.maxAbsDiff(x), 1e-7);
}

TEST(DropoutLayer, TrainingDropsAndScales)
{
    Rng rng(32);
    DropoutLayer drop("d", 0.5, rng);
    Tensor x(1, 1, 1, 1000);
    x.fill(1.0f);
    const Tensor y = drop.forward(x, true);
    std::size_t zeros = 0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        if (y[i] == 0.0f) {
            ++zeros;
        } else {
            EXPECT_FLOAT_EQ(y[i], 2.0f); // inverted scaling
        }
    }
    EXPECT_NEAR(double(zeros) / 1000.0, 0.5, 0.08);
}

// ------------------------------------------------------------ Network

TEST(Network, ForwardShapesCompose)
{
    Rng rng(40);
    Network net = makeMiniNet(MiniSize::Small, rng);
    Tensor x(3, 1, 16, 16);
    x.fillGaussian(rng, 0, 1);
    const Tensor logits = net.forward(x, false);
    EXPECT_EQ(logits.shape(), (Shape{3, 8, 1, 1}));
}

TEST(Network, PredictIsSoftmaxed)
{
    Rng rng(41);
    Network net = makeMiniNet(MiniSize::Small, rng);
    Tensor x(2, 1, 16, 16);
    x.fillGaussian(rng, 0, 1);
    const Tensor p = net.predict(x);
    for (std::size_t i = 0; i < 2; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < 8; ++j)
            s += p.data()[i * 8 + j];
        EXPECT_NEAR(s, 1.0, 1e-5);
    }
}

TEST(Network, ConvLayersExposed)
{
    Rng rng(42);
    Network net = makeMiniNet(MiniSize::Large, rng);
    EXPECT_EQ(net.convLayers().size(), 3u);
    EXPECT_EQ(net.fcLayers().size(), 2u);
    EXPECT_EQ(net.convSpecs().size(), 3u);
}

TEST(Network, ClearPerforationResetsAll)
{
    Rng rng(43);
    Network net = makeMiniNet(MiniSize::Medium, rng);
    for (ConvLayer *c : net.convLayers())
        c->setComputedPositions(8);
    net.clearPerforation();
    for (ConvLayer *c : net.convLayers())
        EXPECT_FALSE(c->perforated());
}

TEST(Network, FlopsPerImagePositive)
{
    Rng rng(44);
    Network net = makeMiniNet(MiniSize::Medium, rng);
    EXPECT_GT(net.flopsPerImage(), 1e4);
}

// ---------------------------------------------------------- model zoo

TEST(ModelZoo, AlexNetLayerShapes)
{
    const NetDescriptor d = alexNet();
    ASSERT_EQ(d.convs.size(), 5u);
    // Table IV: CONV2's per-group GEMM result matrix is 128 x 729.
    const GemmShape conv2 = d.convs[1].gemmShape(1);
    EXPECT_EQ(conv2.m, 128u);
    EXPECT_EQ(conv2.n, 729u);
    EXPECT_EQ(conv2.k, 1200u);
    // Table IV: CONV5 is 128 x 169.
    const GemmShape conv5 = d.convs[4].gemmShape(1);
    EXPECT_EQ(conv5.m, 128u);
    EXPECT_EQ(conv5.n, 169u);
    EXPECT_EQ(conv5.k, 1728u);
}

TEST(ModelZoo, AlexNetParameterCount)
{
    // ~61M parameters in the published network.
    const double params = double(alexNet().weightCount());
    EXPECT_NEAR(params, 61e6, 2e6);
}

TEST(ModelZoo, AlexNetFlops)
{
    // ~1.4 GFLOP per image (2x the ~0.7 GMAC literature figure).
    const double flops = alexNet().totalFlopsPerImage();
    EXPECT_GT(flops, 1.2e9);
    EXPECT_LT(flops, 1.7e9);
}

TEST(ModelZoo, Vgg16Flops)
{
    // The paper's intro: VGGNet needs ~1.5e10 multiplications, i.e.
    // ~3e10 FLOPs per image.
    const double flops = vgg16().totalFlopsPerImage();
    EXPECT_GT(flops, 2.7e10);
    EXPECT_LT(flops, 3.4e10);
}

TEST(ModelZoo, Vgg16ParameterCount)
{
    EXPECT_NEAR(double(vgg16().weightCount()), 138e6, 4e6);
}

TEST(ModelZoo, GoogLeNetStructure)
{
    const NetDescriptor d = googleNet();
    // conv1 + conv2(2) + 9 inceptions x 6 branches = 57 conv layers.
    EXPECT_EQ(d.convs.size(), 57u);
    // ~7M parameters, ~3-3.4 GFLOPs.
    EXPECT_LT(double(d.weightCount()), 9e6);
    EXPECT_GT(d.totalFlopsPerImage(), 2.5e9);
    EXPECT_LT(d.totalFlopsPerImage(), 4e9);
}

TEST(ModelZoo, PaperBatchSizes)
{
    // Section III.B: 128 for AlexNet, 64 for GoogLeNet, 32 for VGGNet.
    EXPECT_EQ(alexNet().paperBatch, 128u);
    EXPECT_EQ(googleNet().paperBatch, 64u);
    EXPECT_EQ(vgg16().paperBatch, 32u);
}

TEST(ModelZoo, MiniNetCapacitiesOrdered)
{
    Rng rng(50);
    Network s = makeMiniNet(MiniSize::Small, rng);
    Network m = makeMiniNet(MiniSize::Medium, rng);
    Network l = makeMiniNet(MiniSize::Large, rng);
    EXPECT_LT(s.flopsPerImage(), m.flopsPerImage());
    EXPECT_LT(m.flopsPerImage(), l.flopsPerImage());
}

TEST(ModelZoo, DescribeRoundTrip)
{
    Rng rng(51);
    Network net = makeMiniNet(MiniSize::Medium, rng);
    const NetDescriptor d = describe(net);
    EXPECT_EQ(d.convs.size(), 2u);
    EXPECT_EQ(d.fcs.size(), 2u);
    EXPECT_EQ(d.fcs[0].second, 48u);
}

} // namespace
} // namespace pcnn
